"""Per-module fact extraction for the whole-program flow analyzer.

One :class:`ModuleSummary` is extracted per source file by a single AST
pass.  Summaries are plain-data (JSON round-trippable, see
:meth:`ModuleSummary.to_dict`) so the analyzer can cache them keyed by
file content hash and skip re-parsing unchanged files.

A summary records, per function (methods included, module-level code as
the pseudo-function ``<module>``):

* **direct taint sources** — wall-clock reads, unseeded RNG use,
  filesystem-ordering primitives, ambient-environment reads, set
  iteration escaping the function, ``id()``-keyed structures;
* **call references** — resolved through the module's import table
  where possible, or recorded symbolically (``self.method()``,
  annotation-typed ``param.method()``) for the linker to resolve
  through the class hierarchy;
* **shared-state facts** — ``global``/``nonlocal`` writes and
  mutations of module-level names;
* **concurrency facts** — executor ``submit``/``map`` sites with the
  submitted callable, and order-dependent accumulations inside
  ``as_completed`` merge loops.

The taint *verdicts* are not made here: extraction is purely local so
that the interprocedural passes (:mod:`repro.verify.flow.callgraph`,
:mod:`repro.verify.flow.taint`, :mod:`repro.verify.flow.concurrency`)
can run from cached summaries alone.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable

#: Bump when the summary schema or extraction logic changes; invalidates
#: cached summaries.
SUMMARY_VERSION = 4

# ------------------------------------------------------------------ #
# taint-source tables
# ------------------------------------------------------------------ #

#: Wall-clock reads (``time.perf_counter``/``monotonic`` deliberately
#: absent: duration measurement is sanctioned).
WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Legacy module-level ``numpy.random`` functions (unseeded global state).
NP_RANDOM_LEGACY = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal", "lognormal",
})

#: Filesystem-enumeration calls whose result order is OS-dependent.
FSORDER_CALLS = frozenset({
    "os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob",
})

#: Path-like methods with OS-dependent result order.
FSORDER_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Ambient-environment reads: results differ across machines/sessions.
ENV_CALLS = frozenset({
    "os.getenv", "os.cpu_count", "os.sched_getaffinity", "os.uname",
})

#: Wrappers that erase iteration order, sanctioning what they enclose.
ORDER_INSENSITIVE_WRAPPERS = frozenset({
    "sorted", "frozenset", "set", "len", "sum", "min", "max", "any", "all",
})

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "add", "update", "insert", "remove", "discard",
    "setdefault", "pop", "popitem", "clear", "sort", "appendleft",
})

#: Executor classes whose ``submit``/``map`` cross process/thread bounds.
EXECUTOR_CLASSES = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
})

#: Thread-spawn constructors whose ``target=`` runs concurrently in the
#: same interpreter: nothing crosses a pickle boundary, but the target's
#: shared-state writes still race the spawning thread.
THREAD_CLASSES = frozenset({
    "threading.Thread", "threading.Timer",
})


# ------------------------------------------------------------------ #
# plain-data records
# ------------------------------------------------------------------ #


@dataclass
class SourceSite:
    """A direct taint source inside one function."""

    rule: str
    line: int
    col: int
    symbol: str
    message: str


@dataclass
class CallRef:
    """One call reference, possibly still symbolic.

    ``kind`` is one of:

    * ``"qname"``  — ``target`` is a dotted name resolved through the
      import table (project function, class, or external symbol);
    * ``"local"``  — ``target`` is a bare name expected at this
      module's top level;
    * ``"method"`` — ``self.``/``cls.``-dispatched call; ``cls`` is the
      enclosing class' local name, ``target`` the method name;
    * ``"typed"``  — call on a local whose class is known from an
      annotation or constructor assignment; ``cls`` is the dotted class.
    """

    kind: str
    target: str
    line: int
    cls: str = ""


@dataclass
class WriteSite:
    """A shared-state write: global/nonlocal or module-level mutation."""

    kind: str  # "global" | "nonlocal" | "module"
    name: str
    line: int


@dataclass
class SubmitSite:
    """A call shipping a callable to concurrent execution.

    ``via`` is ``"submit"``/``"map"`` for executor methods (the callable
    crosses a process/thread pool boundary, so it must pickle) or
    ``"thread"`` for ``threading.Thread``/``Timer`` constructors (same
    interpreter — no pickling, but shared state still races).
    """

    line: int
    via: str  # "submit" | "map" | "thread"
    callee_kind: str  # "qname" | "local" | "lambda" | "nested" | "unknown"
    callee: str = ""


@dataclass
class MergeSite:
    """An order-dependent accumulation inside an as_completed loop."""

    line: int
    op: str
    target: str


@dataclass
class FunctionFact:
    """Everything the interprocedural passes need about one function."""

    name: str  # "f", "Cls.f", or "<module>"
    line: int
    cls: str = ""  # enclosing class local name, "" for free functions
    sources: list[SourceSite] = field(default_factory=list)
    calls: list[CallRef] = field(default_factory=list)
    writes: list[WriteSite] = field(default_factory=list)
    submits: list[SubmitSite] = field(default_factory=list)
    merges: list[MergeSite] = field(default_factory=list)
    nested_defs: list[str] = field(default_factory=list)


@dataclass
class ClassFact:
    """A class definition: bases (dotted where resolvable) and methods."""

    name: str
    line: int
    bases: list[str] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)


@dataclass
class ModuleSummary:
    """All extracted facts for one module."""

    module: str  # dotted module name, e.g. "repro.simulator.parallel"
    path: str  # path relative to the analysis root's parent
    functions: dict[str, FunctionFact] = field(default_factory=dict)
    classes: dict[str, ClassFact] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"version": SUMMARY_VERSION, **asdict(self)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ModuleSummary":
        functions = {
            name: FunctionFact(
                name=f["name"], line=f["line"], cls=f["cls"],
                sources=[SourceSite(**s) for s in f["sources"]],
                calls=[CallRef(**c) for c in f["calls"]],
                writes=[WriteSite(**w) for w in f["writes"]],
                submits=[SubmitSite(**s) for s in f["submits"]],
                merges=[MergeSite(**m) for m in f["merges"]],
                nested_defs=list(f["nested_defs"]),
            )
            for name, f in data["functions"].items()
        }
        classes = {
            name: ClassFact(name=c["name"], line=c["line"],
                            bases=list(c["bases"]), methods=list(c["methods"]))
            for name, c in data["classes"].items()
        }
        return cls(module=data["module"], path=data["path"],
                   functions=functions, classes=classes,
                   imports=dict(data["imports"]))


# ------------------------------------------------------------------ #
# extraction visitor
# ------------------------------------------------------------------ #


def _dotted(node: ast.expr) -> "list[str] | None":
    """``a.b.c`` attribute chain as ``["a", "b", "c"]``, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def _annotation_dotted(ann: "ast.expr | None") -> "str | None":
    """Best-effort dotted class name from a parameter annotation."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        text = ann.value.strip()
        # "ClusterSpec | None" and 'Optional["Scheduler"]'-style strings:
        # take the first dotted identifier if the whole string is simple.
        head = text.split("|")[0].strip().strip("\"'")
        if head and all(p.isidentifier() for p in head.split(".")):
            return head
        return None
    parts = _dotted(ann)
    return ".".join(parts) if parts else None


class _Extractor(ast.NodeVisitor):
    """Single-pass extractor producing a :class:`ModuleSummary`."""

    def __init__(self, module: str, path: str, tree: ast.Module) -> None:
        self.summary = ModuleSummary(module=module, path=path)
        #: local name -> dotted target, for module aliases *and* from-imports
        self._names: dict[str, str] = {}
        #: names assigned at module top level (for shared-mutation checks)
        self._module_names = _top_level_names(tree)
        self._class_stack: list[str] = []
        module_fact = FunctionFact(name="<module>", line=1)
        self.summary.functions["<module>"] = module_fact
        self._fact_stack: list[FunctionFact] = [module_fact]
        #: nesting depth of real (non-module) function defs
        self._func_depth = 0
        #: enclosing-call wrapper names, for order-insensitive sanctioning
        self._wrapper_stack: list[str] = []
        #: as_completed merge-loop nesting depth
        self._merge_depth = 0
        #: per-function inferred local types / set-valued / list-valued names
        self._local_types: dict[str, str] = {}
        self._set_vars: set[str] = set()
        self._list_vars: set[str] = set()
        self._declared_globals: set[str] = set()
        self._declared_nonlocals: set[str] = set()

    # ------------------------- helpers ------------------------------ #

    @property
    def _fact(self) -> FunctionFact:
        return self._fact_stack[-1]

    def _emit_source(self, node: ast.AST, rule: str, symbol: str,
                     message: str) -> None:
        self._fact.sources.append(SourceSite(
            rule=rule, line=node.lineno, col=node.col_offset,
            symbol=symbol, message=message,
        ))

    def _resolve_dotted(self, parts: list[str]) -> str:
        """Expand the head of an attribute chain through the imports."""
        head, rest = parts[0], parts[1:]
        base = self._names.get(head)
        if base is None:
            return ".".join(parts)
        return ".".join([base, *rest]) if rest else base

    def _expand_name(self, name: str) -> "str | None":
        return self._names.get(name)

    # ------------------------- imports ------------------------------ #

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self._names[local] = target
            self.summary.imports[local] = target
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        if node.level:  # relative import: anchor on this module's package
            parts = self.summary.module.split(".")
            anchor = parts[: len(parts) - node.level]
            mod = ".".join([*anchor, mod]) if mod else ".".join(anchor)
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self._names[local] = f"{mod}.{alias.name}" if mod else alias.name
            self.summary.imports[local] = self._names[local]
        self.generic_visit(node)

    # --------------------- defs and classes ------------------------- #

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._class_stack and self._func_depth == 0:
            bases = []
            for b in node.bases:
                parts = _dotted(b)
                if parts:
                    bases.append(self._resolve_dotted(parts))
            methods = [n.name for n in node.body
                       if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
            self.summary.classes[node.name] = ClassFact(
                name=node.name, line=node.lineno, bases=bases, methods=methods)
            self._class_stack.append(node.name)
            self.generic_visit(node)
            self._class_stack.pop()
        else:  # nested class: visit body, attribute facts to current fact
            self.generic_visit(node)

    def _visit_funcdef(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        if self._func_depth > 0:
            # Nested function: its body's facts accrue to the enclosing
            # function (sound for taint: defining is inert, calling is
            # almost always local), but remember the name so submit
            # sites can flag unpicklable nested workers.
            self._fact.nested_defs.append(node.name)
            self._func_depth += 1
            self.generic_visit(node)
            self._func_depth -= 1
            return
        cls = self._class_stack[-1] if self._class_stack else ""
        name = f"{cls}.{node.name}" if cls else node.name
        fact = FunctionFact(name=name, line=node.lineno, cls=cls)
        self.summary.functions[name] = fact
        self._fact_stack.append(fact)
        self._func_depth += 1
        saved = (self._local_types, self._set_vars, self._list_vars,
                 self._declared_globals, self._declared_nonlocals)
        self._local_types = {}
        self._set_vars = set()
        self._list_vars = set()
        self._declared_globals = set()
        self._declared_nonlocals = set()
        for arg in [*node.args.posonlyargs, *node.args.args,
                    *node.args.kwonlyargs]:
            ann = _annotation_dotted(arg.annotation)
            if ann:
                parts = ann.split(".")
                self._local_types[arg.arg] = self._resolve_dotted(parts)
        self.generic_visit(node)
        (self._local_types, self._set_vars, self._list_vars,
         self._declared_globals, self._declared_nonlocals) = saved
        self._func_depth -= 1
        self._fact_stack.pop()

    visit_FunctionDef = _visit_funcdef
    visit_AsyncFunctionDef = _visit_funcdef

    # ------------------- shared-state writes ------------------------ #

    def visit_Global(self, node: ast.Global) -> None:
        self._declared_globals.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._declared_nonlocals.update(node.names)

    def _record_store(self, target: ast.expr, line: int) -> None:
        if isinstance(target, ast.Name):
            if target.id in self._declared_globals:
                self._fact.writes.append(WriteSite("global", target.id, line))
            elif target.id in self._declared_nonlocals:
                self._fact.writes.append(WriteSite("nonlocal", target.id, line))
        elif isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
            name = target.value.id
            if (self._fact.name != "<module>" and name in self._module_names
                    and name not in self._local_types
                    and name not in self._set_vars
                    and name not in self._list_vars):
                self._fact.writes.append(WriteSite("module", name, line))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(elt, line)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_store(target, node.lineno)
            if isinstance(target, ast.Name):
                self._infer_local(target.id, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_store(node.target, node.lineno)
        if isinstance(node.target, ast.Name) and node.value is not None:
            self._infer_local(node.target.id, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_store(node.target, node.lineno)
        if (self._merge_depth > 0 and isinstance(node.target, ast.Name)
                and node.target.id in self._list_vars):
            self._fact.merges.append(MergeSite(
                line=node.lineno, op="+=", target=node.target.id))
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if isinstance(item.optional_vars, ast.Name):
                self._infer_local(item.optional_vars.id, item.context_expr)
        self.generic_visit(node)

    def _infer_local(self, name: str, value: ast.expr) -> None:
        """Track constructor-typed, set-valued, and list-valued locals."""
        self._set_vars.discard(name)
        self._list_vars.discard(name)
        self._local_types.pop(name, None)
        if _is_set_expr(value, self._set_vars):
            self._set_vars.add(name)
        elif isinstance(value, (ast.List, ast.ListComp)):
            self._list_vars.add(name)
        elif isinstance(value, ast.Call):
            parts = _dotted(value.func)
            if parts:
                dotted = self._resolve_dotted(parts)
                if dotted == "list":
                    self._list_vars.add(name)
                elif dotted == "set":
                    self._set_vars.add(name)
                else:
                    self._local_types[name] = dotted

    # --------------------------- loops ------------------------------ #

    def visit_For(self, node: ast.For) -> None:
        iter_call = node.iter
        is_merge = False
        if isinstance(iter_call, ast.Call):
            parts = _dotted(iter_call.func)
            if parts:
                dotted = self._resolve_dotted(parts)
                if dotted.endswith("as_completed"):
                    is_merge = True
        if (_is_set_expr(node.iter, self._set_vars)
                and not self._in_order_insensitive()
                and _loop_escapes_order(node)):
            self._emit_source(
                node, "F005", "set-iteration",
                "iteration order of a set escapes this function "
                "(hash-order dependent); sort or use an ordered container")
        if is_merge:
            self._merge_depth += 1
        self.generic_visit(node)
        if is_merge:
            self._merge_depth -= 1

    # --------------------------- calls ------------------------------ #

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._classify_call(node)
        wrapper = ""
        if isinstance(node.func, ast.Name):
            wrapper = node.func.id
        elif dotted:
            wrapper = dotted.rsplit(".", 1)[-1]
        if wrapper in ORDER_INSENSITIVE_WRAPPERS:
            self._wrapper_stack.append(wrapper)
            self.generic_visit(node)
            self._wrapper_stack.pop()
        else:
            self.generic_visit(node)

    def _in_order_insensitive(self) -> bool:
        return bool(self._wrapper_stack)

    def _classify_call(self, node: ast.Call) -> str:
        """Record the call reference + any taint source; returns dotted."""
        func = node.func
        line = node.lineno

        # -- bare-name calls --------------------------------------- #
        if isinstance(func, ast.Name):
            name = func.id
            if name == "id":
                self._emit_source(
                    node, "F006", "id()",
                    "id() depends on memory layout; keying or ordering by "
                    "it is run-dependent")
                return "id"
            expanded = self._expand_name(name)
            if expanded is not None:
                self._check_source_call(node, expanded)
                self._check_thread_spawn(node, expanded)
                self._fact.calls.append(CallRef("qname", expanded, line))
                return expanded
            self._fact.calls.append(CallRef("local", name, line))
            return name

        # -- attribute calls --------------------------------------- #
        if isinstance(func, ast.Attribute):
            parts = _dotted(func)
            if parts is not None:
                head = parts[0]
                if head in ("self", "cls") and len(parts) == 2:
                    self._fact.calls.append(CallRef(
                        "method", parts[1], line, cls=self._fact.cls))
                    return ""
                if head in self._local_types and len(parts) == 2:
                    self._check_submit(node, func, "")
                    self._fact.calls.append(CallRef(
                        "typed", parts[1], line,
                        cls=self._local_types[head]))
                    return ""
                dotted = self._resolve_dotted(parts)
                self._check_source_call(node, dotted)
                self._check_thread_spawn(node, dotted)
                self._fact.calls.append(CallRef("qname", dotted, line))
                self._check_submit(node, func, dotted)
                return dotted
            # receiver is an arbitrary expression: only the trailing
            # method name is meaningful.
            self._check_method_source(node, func.attr)
            self._check_submit(node, func, "")
            return ""
        return ""

    def _check_source_call(self, node: ast.Call, dotted: str) -> None:
        if dotted in WALLCLOCK_CALLS:
            self._emit_source(
                node, "F001", dotted,
                f"{dotted}() reads the wall clock; pass timestamps "
                "explicitly (perf_counter is sanctioned for durations)")
        elif dotted == "random" or dotted.startswith("random."):
            self._emit_source(
                node, "F002", dotted,
                f"stdlib {dotted} draws from unseeded global state; use "
                "repro.util.rng.resolve_rng")
        elif (dotted.startswith("numpy.random.")
              and dotted.rsplit(".", 1)[-1] in NP_RANDOM_LEGACY):
            self._emit_source(
                node, "F002", dotted,
                f"legacy {dotted} uses unseeded global state; use "
                "numpy.random.default_rng via repro.util.rng")
        elif dotted == "numpy.random.default_rng" and not node.args:
            self._emit_source(
                node, "F002", dotted,
                "default_rng() without a seed is entropy-seeded; thread a "
                "seed or Generator through repro.util.rng.resolve_rng")
        elif dotted in FSORDER_CALLS and not self._in_order_insensitive():
            self._emit_source(
                node, "F003", dotted,
                f"{dotted}() returns entries in OS-dependent order; wrap "
                "in sorted()")
        elif dotted in ENV_CALLS:
            self._emit_source(
                node, "F004", dotted,
                f"{dotted}() reads the ambient environment; results differ "
                "across machines and sessions")
        elif dotted in ("os.environ.get", "os.environ.items",
                        "os.environ.keys", "os.environ.__getitem__"):
            self._emit_source(
                node, "F004", "os.environ",
                "os.environ read makes behavior depend on the ambient "
                "environment")
        self._check_method_source(node, dotted.rsplit(".", 1)[-1])

    def _check_method_source(self, node: ast.Call, method: str) -> None:
        if method in FSORDER_METHODS and not self._in_order_insensitive():
            # .glob()/.rglob()/.iterdir() on some path-like receiver.
            receiver_ok = isinstance(node.func, ast.Attribute)
            if receiver_ok:
                self._emit_source(
                    node, "F003", f".{method}",
                    f".{method}() yields entries in OS-dependent order; "
                    "wrap in sorted()")

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # os.environ["X"] reads
        parts = _dotted(node.value)
        if parts and self._resolve_dotted(parts) == "os.environ":
            self._emit_source(
                node, "F004", "os.environ",
                "os.environ read makes behavior depend on the ambient "
                "environment")
        self.generic_visit(node)

    # ------------------------ concurrency --------------------------- #

    def _check_submit(self, node: ast.Call, func: ast.Attribute,
                      dotted: str) -> None:
        method = func.attr
        if method not in ("submit", "map"):
            return
        receiver = func.value
        is_executor = False
        if isinstance(receiver, ast.Name):
            rtype = self._local_types.get(receiver.id, "")
            is_executor = rtype in EXECUTOR_CLASSES or any(
                key in receiver.id.lower() for key in ("pool", "executor"))
        if not is_executor:
            return
        if not node.args:
            return
        kind, callee = self._classify_callee(node.args[0])
        self._fact.submits.append(SubmitSite(
            line=node.lineno, via=method, callee_kind=kind, callee=callee))

    def _classify_callee(self, target: ast.expr) -> "tuple[str, str]":
        """Classify a callable shipped to an executor or thread."""
        if isinstance(target, ast.Lambda):
            return "lambda", ""
        if isinstance(target, ast.Name):
            name = target.id
            if name in self._fact.nested_defs:
                return "nested", name
            expanded = self._expand_name(name)
            if expanded is not None:
                return "qname", expanded
            return "local", name
        parts = _dotted(target)
        if parts is not None:
            return "qname", self._resolve_dotted(parts)
        return "unknown", ""

    def _check_thread_spawn(self, node: ast.Call, dotted: str) -> None:
        """Record ``threading.Thread(target=...)`` as a thread submit."""
        if dotted not in THREAD_CLASSES:
            return
        target = next(
            (kw.value for kw in node.keywords if kw.arg == "target"), None)
        if target is None and len(node.args) > 1:
            # Thread(group, target, ...) positional form.
            target = node.args[1]
        if target is None:
            return
        kind, callee = self._classify_callee(target)
        self._fact.submits.append(SubmitSite(
            line=node.lineno, via="thread", callee_kind=kind, callee=callee))

    def visit_Expr(self, node: ast.Expr) -> None:
        # Statement-level mutator calls: X.append(...) on module-level
        # or merge-loop targets.
        call = node.value
        if (isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute)
                and call.func.attr in MUTATOR_METHODS
                and isinstance(call.func.value, ast.Name)):
            name = call.func.value.id
            if self._merge_depth > 0 and call.func.attr in ("append", "extend"):
                self._fact.merges.append(MergeSite(
                    line=node.lineno, op=call.func.attr, target=name))
            if (self._fact.name != "<module>" and name in self._module_names
                    and name not in self._local_types
                    and name not in self._set_vars
                    and name not in self._list_vars):
                self._fact.writes.append(
                    WriteSite("module", name, node.lineno))
        self.generic_visit(node)


def _top_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        targets: Iterable[ast.expr] = ()
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = (node.target,)
        for t in targets:
            if isinstance(t, ast.Name):
                names.add(t.id)
    return names


def _is_set_expr(node: ast.expr, set_vars: set[str]) -> bool:
    """True if ``node`` is statically known to evaluate to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_vars
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "set"
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Sub, ast.BitAnd, ast.BitOr, ast.BitXor)):
        return (_is_set_expr(node.left, set_vars)
                or _is_set_expr(node.right, set_vars))
    return False


def _loop_escapes_order(node: ast.For) -> bool:
    """True if the loop body makes iteration order observable outside."""
    for child in ast.walk(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        if (isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in ("append", "extend")):
            return True
    return False


# ------------------------------------------------------------------ #
# entry point
# ------------------------------------------------------------------ #


def summarize_source(source: str, *, module: str, path: str) -> ModuleSummary:
    """Extract a :class:`ModuleSummary` from source text.

    Raises :class:`SyntaxError` for unparsable input — the analyzer
    converts that into a finding rather than crashing the run.
    """
    tree = ast.parse(source, filename=path)
    extractor = _Extractor(module, path, tree)
    extractor.visit(tree)
    return extractor.summary


def summarize_file(file: pathlib.Path, *, module: str,
                   path: str) -> ModuleSummary:
    return summarize_source(file.read_text(encoding="utf-8"),
                            module=module, path=path)
