"""repro.verify.flow — whole-program determinism & concurrency analyzer.

The per-function AST lint (:mod:`repro.verify.lint`) catches *local*
determinism sins; this package catches the interprocedural ones.  It
builds per-module symbol tables and a project call graph (with method
resolution through the scheduler/simulator class hierarchies), runs a
fixpoint taint analysis classifying every function as
pure/deterministic/tainted, and adds a concurrency pass over the
parallel-replay and callback code.

Rule catalogue (all severities ERROR; the gate is "no unsuppressed
findings"):

==== ==============================================================
F000 file does not parse
F001 wall-clock read (``time.time``, ``datetime.now``, ...)
F002 unseeded RNG (stdlib ``random``, legacy ``numpy.random`` global
     state, ``default_rng()`` without a seed) outside ``util/rng.py``
F003 filesystem-enumeration order (``os.listdir``, ``glob``,
     ``Path.iterdir``/``glob``/``rglob``) not wrapped in ``sorted()``
F004 ambient-environment read (``os.environ``, ``os.getenv``,
     ``os.cpu_count``, ...)
F005 set iteration order escaping the function (yield/append)
F006 ``id()``-keyed/ordered structures (memory-layout dependent)
F007 deterministic-zone function tainted *via calls* (the
     interprocedural rule; details carry the call chain)
F101 worker-reachable function mutates global/closure/module state
F102 order-dependent accumulation inside an ``as_completed()`` loop
F103 lambda / nested function shipped across a shard boundary
==== ==============================================================

Suppression: inline ``# flow: allow[F00x] reason`` pragmas or the
committed baseline file (``tools/flow_baseline.json``) — see
:mod:`repro.verify.flow.suppress` and ``docs/verification.md``.

Quick use::

    from repro.verify.flow import analyze_project
    result = analyze_project()          # analyzes the repro package
    print(result.render())
    assert result.ok                    # no unsuppressed findings
"""

from __future__ import annotations

from repro.verify.flow.analyzer import (
    DEFAULT_CRITICAL_ZONES,
    FlowConfig,
    FlowResult,
    analyze_project,
    default_baseline_path,
    default_root,
)
from repro.verify.flow.callgraph import CallGraph, link
from repro.verify.flow.summary import (
    ModuleSummary,
    summarize_file,
    summarize_source,
)
from repro.verify.flow.suppress import Baseline, BaselineEntry, parse_pragmas
from repro.verify.flow.taint import TaintResult, run_taint

#: Every flow rule id, for docs/tests.
ALL_RULES = (
    "F000", "F001", "F002", "F003", "F004", "F005", "F006", "F007",
    "F101", "F102", "F103",
)

__all__ = [
    "ALL_RULES",
    "DEFAULT_CRITICAL_ZONES",
    "FlowConfig",
    "FlowResult",
    "analyze_project",
    "default_baseline_path",
    "default_root",
    "CallGraph",
    "link",
    "ModuleSummary",
    "summarize_file",
    "summarize_source",
    "Baseline",
    "BaselineEntry",
    "parse_pragmas",
    "TaintResult",
    "run_taint",
]
