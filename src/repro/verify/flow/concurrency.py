"""Concurrency & shared-state pass over the project call graph.

Three rule families, targeting the ways parallel replay and callback
code can silently break the repo's order-independence guarantees:

* **F101 — worker shared-state mutation.**  The *worker set* is every
  function shipped to an executor (``pool.submit(f, ...)`` /
  ``pool.map(f, ...)``) or spawned on a thread
  (``threading.Thread(target=f)``), plus everything reachable from it
  through the call graph.  Any ``global``/``nonlocal`` write or
  mutation of a module-level object inside the worker set is flagged:
  in a process pool the write silently diverges from the parent, in a
  thread pool or spawned thread it races.
* **F102 — order-dependent merge.**  Inside ``for ... in
  as_completed(...)`` loops, appending/extending an accumulator
  records *completion* order, which varies run to run.  Index-based
  scatter (``merged[idx] = ...``) and commutative numeric reductions
  are the sanctioned patterns and are not flagged.
* **F103 — unpicklable/unfrozen shard crossing.**  Submitting a
  ``lambda`` or a function nested inside another function fails (or
  worse, semi-works) under pickling process pools; workers must be
  module-level functions taking plain-data payloads.  ``via ==
  "thread"`` submits are exempt — threads share the interpreter, so
  nothing pickles — but their targets still join the F101 worker set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.verify.flow.callgraph import CallGraph


@dataclass
class ConcurrencyFinding:
    """One concurrency finding at a concrete site."""

    rule: str
    module: str
    path: str
    line: int
    function: str  # function name within the module
    message: str
    worker_root: str = ""


def run_concurrency(graph: CallGraph) -> list[ConcurrencyFinding]:
    findings: list[ConcurrencyFinding] = []

    # ---- collect submit sites and the resolved worker roots -------- #
    worker_roots: set[str] = set()
    for mod_name, summary in graph.modules.items():
        for fact in summary.functions.values():
            for sub in fact.submits:
                if sub.via == "thread":
                    # Same-interpreter spawn: no pickle boundary, so
                    # F103 does not apply; named targets still seed the
                    # F101 shared-state reachability pass.  (Nested /
                    # lambda targets racing closed-over state are
                    # caught by the closure-race check below.)
                    if sub.callee_kind == "local":
                        worker_roots.add(f"{mod_name}.{sub.callee}")
                    elif (sub.callee_kind == "qname"
                          and sub.callee in graph.functions):
                        worker_roots.add(sub.callee)
                    continue
                if sub.callee_kind == "lambda":
                    findings.append(ConcurrencyFinding(
                        rule="F103", module=mod_name, path=summary.path,
                        line=sub.line, function=fact.name,
                        message=f"{sub.via}() ships a lambda across the "
                                "shard boundary; lambdas do not pickle — "
                                "use a module-level worker function",
                    ))
                elif sub.callee_kind == "nested":
                    findings.append(ConcurrencyFinding(
                        rule="F103", module=mod_name, path=summary.path,
                        line=sub.line, function=fact.name,
                        message=f"{sub.via}() ships nested function "
                                f"{sub.callee!r} across the shard boundary; "
                                "nested functions do not pickle — hoist it "
                                "to module level",
                    ))
                elif sub.callee_kind == "local":
                    worker_roots.add(f"{mod_name}.{sub.callee}")
                elif sub.callee_kind == "qname":
                    if sub.callee in graph.functions:
                        worker_roots.add(sub.callee)

    # ---- F101: shared-state writes anywhere in the worker set ------ #
    worker_set = graph.reachable_from(worker_roots)
    root_of: dict[str, str] = {}
    for root in sorted(worker_roots):
        for fn in graph.reachable_from([root]):
            root_of.setdefault(fn, root)
    for fn in sorted(worker_set):
        fact = graph.functions[fn]
        mod_name = graph.owner[fn]
        summary = graph.modules[mod_name]
        for write in fact.writes:
            # ``nonlocal`` writes target a closure created inside the
            # worker itself — function-local, not shared across shards.
            # (Closures genuinely shared with workers are handled below.)
            if write.kind == "nonlocal":
                continue
            kind = ("a global" if write.kind == "global"
                    else "module-level object")
            findings.append(ConcurrencyFinding(
                rule="F101", module=mod_name, path=summary.path,
                line=write.line, function=fact.name,
                message=f"worker-reachable function {fact.name!r} mutates "
                        f"{kind} state {write.name!r}; in a process pool "
                        "the write is lost, in a thread pool it races — "
                        "return results and merge in the parent",
                worker_root=root_of.get(fn, ""),
            ))

    # Closure state shared *with* a worker: a function that ships a
    # nested function / lambda to an executor and also writes nonlocal
    # state races that closure against the worker.
    for mod_name, summary in graph.modules.items():
        for fact in summary.functions.values():
            ships_closure = any(
                s.callee_kind in ("nested", "lambda") for s in fact.submits)
            if not ships_closure:
                continue
            for write in fact.writes:
                if write.kind != "nonlocal":
                    continue
                findings.append(ConcurrencyFinding(
                    rule="F101", module=mod_name, path=summary.path,
                    line=write.line, function=fact.name,
                    message=f"{fact.name!r} mutates closed-over state "
                            f"{write.name!r} while shipping a closure "
                            "worker to an executor; the write races the "
                            "worker — return results and merge in the "
                            "parent",
                ))

    # ---- F102: order-dependent accumulation in merge loops --------- #
    for mod_name, summary in graph.modules.items():
        for fact in summary.functions.values():
            for merge in fact.merges:
                findings.append(ConcurrencyFinding(
                    rule="F102", module=mod_name, path=summary.path,
                    line=merge.line, function=fact.name,
                    message=f"{merge.target}.{merge.op} inside an "
                            "as_completed() loop records completion order, "
                            "which varies run to run; scatter by original "
                            "index or use a commutative reduction",
                ))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
