"""Whole-program flow analysis orchestrator.

Pipeline (see the package docstring for the rule catalogue):

1. discover ``*.py`` files under the analysis root (sorted, so results
   never depend on filesystem order);
2. extract one :class:`~repro.verify.flow.summary.ModuleSummary` per
   file — served from the content-hash cache when unchanged;
3. link summaries into a project call graph with class-hierarchy
   method resolution;
4. filter taint sources through inline pragmas + the committed
   baseline, then run the taint fixpoint (F001–F006 at source sites,
   F007 for critical-zone functions tainted only via calls);
5. run the concurrency pass (F101–F103) and filter its findings the
   same way;
6. assemble a :class:`FlowResult` reporting through the existing
   :mod:`repro.verify.diagnostics` types.

The analyzer is itself part of ``src/repro`` and therefore analyzes
(and must keep clean) its own source.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.verify.diagnostics import Finding, Report, Severity
from repro.verify.flow.callgraph import CallGraph, link
from repro.verify.flow.concurrency import run_concurrency
from repro.verify.flow.summary import (
    SUMMARY_VERSION,
    ModuleSummary,
    SourceSite,
    summarize_source,
)
from repro.verify.flow.suppress import Baseline, parse_pragmas, pragma_allows
from repro.verify.flow.taint import TaintResult, run_taint

#: Top-level packages (relative to the analysis root) whose functions
#: must be deterministic: taint arriving *via calls* is reported (F007).
DEFAULT_CRITICAL_ZONES = (
    "core", "simulator", "schedulers", "faults", "model", "trace", "dag",
)

#: Path suffixes exempt from source extraction filtering — the blessed
#: RNG plumbing is the sanctioned sink for randomness.
DEFAULT_EXEMPT_SUFFIXES = ("util/rng.py",)


@dataclass
class FlowConfig:
    """Tunable knobs; defaults match the repro package layout."""

    critical_zones: tuple[str, ...] = DEFAULT_CRITICAL_ZONES
    exempt_suffixes: tuple[str, ...] = DEFAULT_EXEMPT_SUFFIXES
    baseline_path: "str | pathlib.Path | None" = None
    cache_dir: "str | pathlib.Path | None" = None
    #: dotted package name for the root directory; default: root.name
    package: "str | None" = None


@dataclass
class SuppressedSite:
    rule: str
    path: str
    line: int
    symbol: str
    how: str  # "pragma" | "baseline"


@dataclass
class FlowResult:
    """Everything one analysis run produced."""

    root: str
    report: Report
    suppressed: list[SuppressedSite]
    taint: TaintResult
    graph: CallGraph
    files: int
    cache_hits: int
    elapsed_s: float
    baseline_path: str = ""

    @property
    def ok(self) -> bool:
        """True iff there are no unsuppressed findings."""
        return len(self.report) == 0

    def to_payload(self) -> dict[str, Any]:
        counts = self.taint.counts()
        return {
            "ok": self.ok,
            "root": self.root,
            "files": self.files,
            "functions": len(self.graph.functions),
            "call_edges": sum(len(v) for v in self.graph.edges.values()),
            "classification_counts": counts,
            "findings": [f.to_dict() for f in self.report],
            "suppressed": [
                {"rule": s.rule, "path": s.path, "line": s.line,
                 "symbol": s.symbol, "how": s.how}
                for s in self.suppressed
            ],
            "baseline": self.baseline_path,
            "cache_hits": self.cache_hits,
            "elapsed_s": round(self.elapsed_s, 3),
        }

    def render(self) -> str:
        lines = [str(f) for f in self.report]
        counts = self.taint.counts()
        lines.append(
            f"flow: {self.files} file(s), {len(self.graph.functions)} "
            f"function(s) [{counts['pure']} pure, "
            f"{counts['deterministic']} deterministic, "
            f"{counts['tainted']} tainted], "
            f"{len(self.report)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{self.elapsed_s:.2f}s")
        return "\n".join(lines)


# ------------------------------------------------------------------ #
# cache
# ------------------------------------------------------------------ #


def _cache_key(source: str) -> str:
    h = hashlib.sha256()
    h.update(f"v{SUMMARY_VERSION}:".encode())
    h.update(source.encode("utf-8"))
    return h.hexdigest()


def _cache_path(cache_dir: pathlib.Path, module: str) -> pathlib.Path:
    return cache_dir / f"{module}.json"


def _load_cached(cache_dir: "pathlib.Path | None", module: str,
                 key: str) -> "ModuleSummary | None":
    if cache_dir is None:
        return None
    path = _cache_path(cache_dir, module)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if data.get("key") != key or data.get("version") != SUMMARY_VERSION:
        return None
    try:
        return ModuleSummary.from_dict(data["summary"])
    except (KeyError, TypeError):
        return None


def _store_cached(cache_dir: "pathlib.Path | None", module: str, key: str,
                  summary: ModuleSummary) -> None:
    if cache_dir is None:
        return
    cache_dir.mkdir(parents=True, exist_ok=True)
    payload = {"version": SUMMARY_VERSION, "key": key,
               "summary": summary.to_dict()}
    _cache_path(cache_dir, module).write_text(
        json.dumps(payload), encoding="utf-8")


# ------------------------------------------------------------------ #
# analysis
# ------------------------------------------------------------------ #


def default_root() -> pathlib.Path:
    """The installed ``repro`` package directory."""
    import repro

    return pathlib.Path(repro.__file__).resolve().parent


def default_baseline_path() -> "pathlib.Path | None":
    """The committed baseline in a source checkout, if present.

    ``src/repro`` layout puts it at ``<repo>/tools/flow_baseline.json``;
    for an installed package (no checkout) there is no baseline and the
    analyzer runs unsuppressed.
    """
    candidate = default_root().parents[1] / "tools" / "flow_baseline.json"
    return candidate if candidate.exists() else None


def _module_qname(root: pathlib.Path, file: pathlib.Path,
                  package: str) -> str:
    rel = file.relative_to(root).with_suffix("")
    parts = [p for p in rel.parts if p != "__init__"]
    return ".".join([package, *parts]) if parts else package


def analyze_project(
    root: "str | pathlib.Path | None" = None,
    config: "FlowConfig | None" = None,
) -> FlowResult:
    """Run the full flow analysis over every ``*.py`` under ``root``."""
    started = time.perf_counter()
    cfg = config or FlowConfig()
    root_path = pathlib.Path(root).resolve() if root else default_root()
    package = cfg.package or root_path.name
    cache_dir = pathlib.Path(cfg.cache_dir) if cfg.cache_dir else None
    baseline = Baseline.load(cfg.baseline_path)

    files = sorted(root_path.rglob("*.py"))
    summaries: dict[str, ModuleSummary] = {}
    sources_text: dict[str, str] = {}
    report = Report()
    cache_hits = 0

    for file in files:
        module = _module_qname(root_path, file, package)
        rel_display = str(
            pathlib.Path(package) / file.relative_to(root_path))
        text = file.read_text(encoding="utf-8")
        sources_text[module] = text
        key = _cache_key(text)
        summary = _load_cached(cache_dir, module, key)
        if summary is not None:
            cache_hits += 1
        else:
            try:
                summary = summarize_source(text, module=module,
                                           path=rel_display)
            except SyntaxError as exc:
                report.add(Finding(
                    "F000", Severity.ERROR,
                    f"{rel_display}:{exc.lineno or 0}",
                    f"syntax error: {exc.msg}",
                    {"path": rel_display, "line": exc.lineno or 0},
                ))
                continue
            _store_cached(cache_dir, module, key, summary)
        summaries[module] = summary

    graph = link(summaries)

    # ---- pragma/baseline filtering of direct sources --------------- #
    pragmas_by_module = {
        module: parse_pragmas(sources_text[module].splitlines())
        for module in summaries
    }
    suppressed: list[SuppressedSite] = []
    active_seeds: dict[str, list[SourceSite]] = {}
    source_findings: list[tuple[ModuleSummary, str, SourceSite]] = []
    for module, summary in summaries.items():
        exempt = any(summary.path.endswith(suffix)
                     for suffix in cfg.exempt_suffixes)
        if exempt:
            continue
        pragmas = pragmas_by_module[module]
        for fact in summary.functions.values():
            qname = f"{module}.{fact.name}"
            for site in fact.sources:
                if pragma_allows(pragmas, site.line, site.rule):
                    suppressed.append(SuppressedSite(
                        site.rule, summary.path, site.line, fact.name,
                        "pragma"))
                elif baseline.allows(site.rule, summary.path, fact.name):
                    suppressed.append(SuppressedSite(
                        site.rule, summary.path, site.line, fact.name,
                        "baseline"))
                else:
                    active_seeds.setdefault(qname, []).append(site)
                    source_findings.append((summary, fact.name, site))

    taint = run_taint(graph, active_seeds)

    for summary, fname, site in source_findings:
        report.add(Finding(
            site.rule, Severity.ERROR,
            f"{summary.path}:{site.line}",
            site.message,
            {"path": summary.path, "line": site.line, "function": fname,
             "symbol": site.symbol},
        ))

    # ---- F007: critical-zone functions tainted only via calls ------ #
    def _zone(summary: ModuleSummary) -> str:
        parts = pathlib.Path(summary.path).parts  # ("repro", "simulator", ...)
        return parts[1] if len(parts) > 2 else ""

    zone_files = {module: _zone(s) for module, s in summaries.items()}
    for qname, info in sorted(taint.taint.items()):
        if qname in active_seeds:
            continue  # direct source, already reported at the site
        module = graph.owner[qname]
        if zone_files.get(module, "") not in cfg.critical_zones:
            continue
        summary = summaries[module]
        fact = graph.functions[qname]
        pragmas = pragmas_by_module[module]
        chain = " -> ".join(info.chain)
        if pragma_allows(pragmas, fact.line, "F007"):
            suppressed.append(SuppressedSite(
                "F007", summary.path, fact.line, fact.name, "pragma"))
            continue
        if baseline.allows("F007", summary.path, fact.name):
            suppressed.append(SuppressedSite(
                "F007", summary.path, fact.line, fact.name, "baseline"))
            continue
        report.add(Finding(
            "F007", Severity.ERROR,
            f"{summary.path}:{fact.line}",
            f"deterministic-zone function {fact.name!r} is tainted via "
            f"{chain} reaching {info.symbol} ({info.rule})",
            {"path": summary.path, "line": fact.line,
             "function": fact.name, "chain": info.chain,
             "source_symbol": info.symbol, "source_rule": info.rule},
        ))

    # ---- concurrency pass ------------------------------------------ #
    for cf in run_concurrency(graph):
        pragmas = pragmas_by_module.get(cf.module, {})
        if pragma_allows(pragmas, cf.line, cf.rule):
            suppressed.append(SuppressedSite(
                cf.rule, cf.path, cf.line, cf.function, "pragma"))
            continue
        if baseline.allows(cf.rule, cf.path, cf.function):
            suppressed.append(SuppressedSite(
                cf.rule, cf.path, cf.line, cf.function, "baseline"))
            continue
        details = {"path": cf.path, "line": cf.line, "function": cf.function}
        if cf.worker_root:
            details["worker_root"] = cf.worker_root
        report.add(Finding(
            cf.rule, Severity.ERROR, f"{cf.path}:{cf.line}",
            cf.message, details))

    return FlowResult(
        root=str(root_path),
        report=report,
        suppressed=suppressed,
        taint=taint,
        graph=graph,
        files=len(files),
        cache_hits=cache_hits,
        elapsed_s=time.perf_counter() - started,
        baseline_path=str(cfg.baseline_path or ""),
    )


def summaries_of(result: FlowResult) -> Iterable[ModuleSummary]:
    """The linked summaries of a result (test/introspection helper)."""
    return result.graph.modules.values()
