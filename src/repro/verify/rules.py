"""Rule registry: named validators grouped by target kind.

A *rule* is a generator function that inspects one subject (a job, a
delay schedule with its job, or a cluster spec) and yields
:class:`~repro.verify.diagnostics.Finding` objects.  Rules register
themselves with the :func:`rule` decorator under a target kind; the
``validate_*`` entry points in :mod:`repro.verify` run every registered
rule for that kind and collect the findings into a
:class:`~repro.verify.diagnostics.Report`.

Adding a rule (see ``docs/verification.md``)::

    from repro.verify.rules import rule
    from repro.verify.diagnostics import Finding, Severity

    @rule("J901", "every stage id is upper-case", target="job")
    def _check_upper(job):
        for sid in job.stage_ids:
            if sid != sid.upper():
                yield Finding("J901", Severity.WARNING,
                              f"job:{job.job_id}/stage:{sid}",
                              "stage id is not upper-case")

Rule functions must be *pure observers*: they never mutate the subject
and never raise on malformed-but-representable input — they report it.
An exception escaping a rule is itself converted into an ERROR finding
so one broken rule cannot mask the rest of the report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from repro.verify.diagnostics import Finding, Report, Severity

#: A rule body: called with the subject(s), yields findings.
RuleCheck = Callable[..., Iterable[Finding]]

#: Valid registry target kinds.
TARGETS = ("job", "schedule", "cluster")


@dataclass(frozen=True)
class Rule:
    """One registered validator."""

    rule_id: str
    description: str
    target: str
    check: RuleCheck


_REGISTRY: dict[str, dict[str, Rule]] = {t: {} for t in TARGETS}


def rule(rule_id: str, description: str, *, target: str) -> Callable[[RuleCheck], RuleCheck]:
    """Register a validator under ``target`` (``job``/``schedule``/``cluster``)."""
    if target not in TARGETS:
        raise ValueError(f"unknown rule target {target!r}; choose from {TARGETS}")

    def decorator(fn: RuleCheck) -> RuleCheck:
        for existing in _REGISTRY.values():
            if rule_id in existing:
                raise ValueError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[target][rule_id] = Rule(rule_id, description, target, fn)
        return fn

    return decorator


def rules_for(target: str) -> list[Rule]:
    """All rules registered for a target kind, in id order."""
    if target not in TARGETS:
        raise ValueError(f"unknown rule target {target!r}; choose from {TARGETS}")
    return [_REGISTRY[target][rid] for rid in sorted(_REGISTRY[target])]


def all_rules() -> list[Rule]:
    """Every registered rule across all targets."""
    return [r for t in TARGETS for r in rules_for(t)]


def _run_one(r: Rule, args: tuple, subject: str) -> Iterator[Finding]:
    """Run a rule defensively: its own crash becomes an ERROR finding."""
    try:
        yield from r.check(*args)
    except Exception as exc:  # noqa: BLE001 - deliberate containment
        yield Finding(
            r.rule_id,
            Severity.ERROR,
            subject,
            f"rule crashed: {type(exc).__name__}: {exc}",
            {"exception": type(exc).__name__},
        )


def run_rules(target: str, *args: Any, subject: str = "") -> Report:
    """Run every rule registered for ``target`` against ``args``."""
    report = Report()
    for r in rules_for(target):
        report.extend(_run_one(r, args, subject or target))
    return report
