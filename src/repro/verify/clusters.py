"""Static validators for cluster specifications and topologies.

The fluid model divides by NIC/disk/executor capacities; a zero,
negative, or non-finite capacity silently produces inf/NaN rates deep
inside the water-filling solver.  These rules reject such specs up
front and flag configurations that are representable but almost
certainly mis-specified.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.cluster.spec import ClusterSpec
from repro.verify.diagnostics import Finding, Severity
from repro.verify.rules import rule

#: NIC heterogeneity beyond this ratio is flagged (the paper's most
#: heterogeneous setup, the Alibaba twin, spans 100 Mbps - 2 Gbps = 20x).
NIC_SPREAD_WARN = 1000.0


def _loc(node_id: str = "") -> str:
    return f"cluster/node:{node_id}" if node_id else "cluster"


@rule("C001", "node capacities are positive and finite", target="cluster")
def check_capacities(cluster: ClusterSpec) -> Iterator[Finding]:
    for node in cluster.nodes:
        for name, value in (
            ("nic_bandwidth", node.nic_bandwidth),
            ("disk_bandwidth", node.disk_bandwidth),
        ):
            if math.isnan(value) or math.isinf(value) or value <= 0:
                yield Finding(
                    "C001",
                    Severity.ERROR,
                    _loc(node.node_id),
                    f"{name} must be finite and > 0, got {value!r}",
                    {"field": name, "value": value},
                )
        if node.executors < 0:
            yield Finding(
                "C001",
                Severity.ERROR,
                _loc(node.node_id),
                f"executors must be >= 0, got {node.executors}",
                {"field": "executors", "value": node.executors},
            )
        if not node.is_storage and node.executors == 0:
            yield Finding(
                "C001",
                Severity.ERROR,
                _loc(node.node_id),
                "worker node has no executors; any stage placed here stalls",
            )
        if node.is_storage and node.executors > 0:
            yield Finding(
                "C001",
                Severity.WARNING,
                _loc(node.node_id),
                f"storage node declares {node.executors} executors; the "
                "simulator never schedules compute on storage nodes",
                {"executors": node.executors},
            )


@rule("C002", "cluster can execute work", target="cluster")
def check_has_workers(cluster: ClusterSpec) -> Iterator[Finding]:
    if cluster.num_workers == 0:
        yield Finding(
            "C002",
            Severity.ERROR,
            _loc(),
            "cluster contains no worker nodes",
        )
    elif cluster.total_executors == 0:
        yield Finding(
            "C002",
            Severity.ERROR,
            _loc(),
            "cluster has zero total executors",
        )


@rule("C003", "endpoint limits are sane", target="cluster")
def check_endpoint_sanity(cluster: ClusterSpec) -> Iterator[Finding]:
    """Extreme NIC spread usually means a unit mix-up (Mbps vs bytes/s)."""
    nics = [n.nic_bandwidth for n in cluster.nodes
            if math.isfinite(n.nic_bandwidth) and n.nic_bandwidth > 0]
    if len(nics) >= 2:
        spread = max(nics) / min(nics)
        if spread > NIC_SPREAD_WARN:
            yield Finding(
                "C003",
                Severity.WARNING,
                _loc(),
                f"NIC bandwidth spreads {spread:.0f}x across nodes "
                f"(> {NIC_SPREAD_WARN:g}x); check for unit mix-ups",
                {"spread": spread, "min": min(nics), "max": max(nics)},
            )
    for node in cluster.nodes:
        if (
            math.isfinite(node.nic_bandwidth)
            and math.isfinite(node.disk_bandwidth)
            and node.disk_bandwidth > 0
            and node.nic_bandwidth / node.disk_bandwidth > NIC_SPREAD_WARN
        ):
            yield Finding(
                "C003",
                Severity.WARNING,
                _loc(node.node_id),
                "NIC is more than 1000x faster than the local disk; shuffle "
                "writes will dominate every stage on this node",
                {"nic_bandwidth": node.nic_bandwidth,
                 "disk_bandwidth": node.disk_bandwidth},
            )
