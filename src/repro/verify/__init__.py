"""repro.verify — static validators, sanitizer mode, and lint.

Three layers of correctness tooling (see ``docs/verification.md``):

1. **Static validators** — a rule registry
   (:mod:`repro.verify.rules`) with rule sets for jobs/DAGs
   (:mod:`repro.verify.jobs`), DelayStage schedules
   (:mod:`repro.verify.schedules`), and cluster specs
   (:mod:`repro.verify.clusters`), reporting machine-readable
   :class:`~repro.verify.diagnostics.Finding` objects.
2. **Sanitizer mode** (:mod:`repro.verify.sanitizer`) — opt-in runtime
   invariant assertions inside the fluid simulator (capacity bounds,
   water-filling optimality, monotone clock, event-log consistency).
3. **Lint** (:mod:`repro.verify.lint`) — an AST lint enforcing
   determinism and float-comparison hygiene, also exposed as
   ``tools/lint_repro.py`` for CI.
4. **Whole-program flow analysis** (:mod:`repro.verify.flow`) — a
   multi-pass interprocedural analyzer: project call graph, taint
   fixpoint for nondeterminism sources, and a concurrency/shared-state
   pass; surfaced as ``repro verify --flow`` and gated in CI against a
   committed baseline (``tools/flow_baseline.json``).

Quick use::

    from repro.verify import validate_job, validate_schedule
    validate_job(job).raise_if_errors()
    report = validate_schedule(schedule, job)
    if not report.ok:
        print(report.render())
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

# Only repro-independent modules may load eagerly: the simulator imports
# ``repro.verify.sanitizer`` at module scope, so anything here that pulls
# in repro.core / repro.model / repro.simulator would close an import
# cycle.  The rule modules (which *do* import those packages) load
# lazily, on first validation.
from repro.verify import sanitizer
from repro.verify.diagnostics import Finding, Report, Severity, ValidationError
from repro.verify.lint import LintFinding, lint_paths, lint_source
from repro.verify.rules import Rule, rule, run_rules
from repro.verify.rules import all_rules as _all_rules
from repro.verify.rules import rules_for as _rules_for
from repro.verify.sanitizer import SanitizerError, sanitized

if TYPE_CHECKING:
    from repro.cluster.spec import ClusterSpec
    from repro.core.schedule import DelaySchedule
    from repro.dag.job import Job

_RULES_LOADED = False


def analyze_flow(root=None, config=None):
    """Run the whole-program flow analyzer (lazy import).

    Thin wrapper over :func:`repro.verify.flow.analyze_project`; kept
    lazy because this package loads inside the simulator's import path
    and the analyzer is only needed on demand.
    """
    from repro.verify.flow import analyze_project

    return analyze_project(root, config)


def load_rule_modules() -> None:
    """Import the rule modules so their ``@rule`` decorators register.

    Deferred past package init because the rule modules import
    repro.core/repro.dag, which (transitively) import the simulator,
    which imports :mod:`repro.verify.sanitizer` — an eager import here
    would be circular.  Idempotent and cheap after the first call.
    """
    global _RULES_LOADED
    if not _RULES_LOADED:
        from repro.verify import clusters, jobs, schedules  # noqa: F401

        _RULES_LOADED = True


def rules_for(target: str) -> "Sequence[Rule]":
    """Registered rules for ``target`` ("job" | "schedule" | "cluster")."""
    load_rule_modules()
    return _rules_for(target)


def all_rules() -> "Sequence[Rule]":
    """Every registered rule, ordered by rule id."""
    load_rule_modules()
    return _all_rules()


def validate_job(job: "Job") -> Report:
    """Run every job/DAG rule against ``job``."""
    load_rule_modules()
    return run_rules("job", job, subject=f"job:{job.job_id}")


def validate_schedule(schedule: "DelaySchedule", job: "Job") -> Report:
    """Run every schedule rule against ``schedule`` (computed for ``job``)."""
    load_rule_modules()
    return run_rules("schedule", schedule, job, subject=f"schedule:{schedule.job_id}")


def validate_cluster(cluster: "ClusterSpec") -> Report:
    """Run every cluster rule against ``cluster``."""
    load_rule_modules()
    return run_rules("cluster", cluster, subject="cluster")


def schedule_from_table(job: "Job", delays: Mapping[str, float]) -> "DelaySchedule":
    """Wrap a bare delay table (e.g. parsed from ``metrics.properties``)
    into a :class:`DelaySchedule` so the schedule rules can run on it.

    Prediction metrics are unknown for an external table and left at
    zero; the metric-consistency rule treats zeros as "not computed".
    """
    from repro.core.schedule import DelaySchedule
    from repro.dag.paths import execution_paths

    return DelaySchedule(
        job_id=job.job_id,
        delays=dict(delays),
        predicted_makespan=0.0,
        baseline_makespan=0.0,
        paths=tuple(execution_paths(job)),
        standalone_times={},
    )


def validate_delay_table(job: "Job", delays: Mapping[str, float]) -> Report:
    """Validate a bare per-stage delay table against ``job``."""
    return validate_schedule(schedule_from_table(job, delays), job)


__all__ = [
    # diagnostics
    "Severity",
    "Finding",
    "Report",
    "ValidationError",
    # registry
    "Rule",
    "rule",
    "rules_for",
    "all_rules",
    "run_rules",
    "load_rule_modules",
    # entry points
    "validate_job",
    "validate_schedule",
    "validate_cluster",
    "validate_delay_table",
    "schedule_from_table",
    # sanitizer
    "sanitizer",
    "sanitized",
    "SanitizerError",
    # lint
    "LintFinding",
    "lint_source",
    "lint_paths",
    # whole-program flow analysis (lazy; see repro.verify.flow)
    "analyze_flow",
]
