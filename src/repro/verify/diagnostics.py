"""Diagnostics: machine-readable findings with severity levels.

Every validator rule (see :mod:`repro.verify.rules`) reports zero or
more :class:`Finding` objects; a validation run collects them into a
:class:`Report`.  Severities follow compiler conventions:

* ``INFO`` — observation worth surfacing (e.g. a shuffle-input ratio
  slightly above 1, which the paper shows is physically meaningful).
* ``WARNING`` — suspicious but not provably wrong; the object may
  still simulate correctly.
* ``ERROR`` — the object violates an invariant the paper's model or
  Algorithm 1 relies on; results computed from it are untrustworthy.

``repro verify`` exits non-zero iff a report contains ERROR findings.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping


class Severity(enum.IntEnum):
    """Finding severity; ordering supports threshold filtering."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a validator rule.

    Attributes
    ----------
    rule:
        Id of the rule that produced the finding (e.g. ``"J004"``).
    severity:
        :class:`Severity` level.
    subject:
        Dotted locator of the offending object, e.g.
        ``"job:lda/stage:S3"`` or ``"cluster/node:w2"``.
    message:
        Human-readable one-line description.
    details:
        Machine-readable context (offending values, bounds, ...).
    """

    rule: str
    severity: Severity
    subject: str
    message: str
    details: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "rule": self.rule,
            "severity": self.severity.name,
            "subject": self.subject,
            "message": self.message,
            "details": dict(self.details),
        }

    def __str__(self) -> str:
        return f"{self.severity.name:7s} {self.rule} {self.subject}: {self.message}"


class ValidationError(ValueError):
    """Raised by :meth:`Report.raise_if_errors` on ERROR findings."""

    def __init__(self, report: "Report") -> None:
        self.report = report
        errors = report.errors
        head = f"{len(errors)} ERROR finding(s)"
        body = "\n".join(str(f) for f in errors)
        super().__init__(f"{head}:\n{body}")


class Report:
    """An ordered collection of findings from one validation run."""

    def __init__(self, findings: "Iterable[Finding]" = ()) -> None:
        self._findings: list[Finding] = list(findings)

    # -------------------------------------------------------------- #
    # collection
    # -------------------------------------------------------------- #

    def add(self, finding: Finding) -> None:
        self._findings.append(finding)

    def extend(self, findings: "Iterable[Finding] | Report") -> "Report":
        """Append findings (or another report's findings); returns self."""
        if isinstance(findings, Report):
            findings = findings.findings
        self._findings.extend(findings)
        return self

    # -------------------------------------------------------------- #
    # queries
    # -------------------------------------------------------------- #

    @property
    def findings(self) -> list[Finding]:
        return list(self._findings)

    def at_least(self, severity: Severity) -> list[Finding]:
        """All findings at or above ``severity``."""
        return [f for f in self._findings if f.severity >= severity]

    @property
    def errors(self) -> list[Finding]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self._findings if f.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True iff the report contains no ERROR findings."""
        return not self.errors

    @property
    def max_severity(self) -> "Severity | None":
        if not self._findings:
            return None
        return max(f.severity for f in self._findings)

    def __len__(self) -> int:
        return len(self._findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self._findings)

    def __bool__(self) -> bool:
        # A Report is truthy iff it holds findings; use ``report.ok``
        # for pass/fail decisions.
        return bool(self._findings)

    # -------------------------------------------------------------- #
    # output
    # -------------------------------------------------------------- #

    def raise_if_errors(self) -> "Report":
        """Raise :class:`ValidationError` if any ERROR finding exists."""
        if not self.ok:
            raise ValidationError(self)
        return self

    def to_json(self, indent: "int | None" = 2) -> str:
        """Serialize the whole report as JSON."""
        payload = {
            "ok": self.ok,
            "counts": {
                sev.name: sum(1 for f in self._findings if f.severity == sev)
                for sev in Severity
            },
            "findings": [f.to_dict() for f in self._findings],
        }
        return json.dumps(payload, indent=indent)

    def render(self) -> str:
        """Human-readable multi-line summary."""
        if not self._findings:
            return "no findings"
        lines = [str(f) for f in self._findings]
        counts = ", ".join(
            f"{sum(1 for f in self._findings if f.severity == sev)} {sev.name}"
            for sev in reversed(Severity)
            if any(f.severity == sev for f in self._findings)
        )
        lines.append(f"-- {len(self._findings)} finding(s): {counts}")
        return "\n".join(lines)
