"""Static validators for jobs and their DAGs.

These rules re-check the structural invariants Algorithm 1 and the
fluid simulator both rely on — independently of the ``Job``
constructor, so they also catch objects corrupted after construction
(e.g. by in-place mutation of internal tables) and jobs deserialized
from external traces.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.dag.graph import ancestors, parallel_stage_set
from repro.dag.job import Job
from repro.dag.paths import execution_paths
from repro.verify.diagnostics import Finding, Severity
from repro.verify.rules import rule

#: Shuffle-input may exceed the parents' intermediate data (the paper's
#: LDA Stage 3 reads 1.3x); beyond this ratio we call it suspicious.
SHUFFLE_RATIO_WARN = 1.5


def _loc(job: Job, stage_id: str = "") -> str:
    base = f"job:{job.job_id}"
    return f"{base}/stage:{stage_id}" if stage_id else base


@rule("J001", "job DAG is acyclic", target="job")
def check_acyclic(job: Job) -> Iterator[Finding]:
    """Kahn's algorithm over the public edge list (constructor-independent)."""
    indeg = {sid: 0 for sid in job.stage_ids}
    children: dict[str, list[str]] = {sid: [] for sid in job.stage_ids}
    for parent, child in job.edges:
        indeg[child] += 1
        children[parent].append(child)
    queue = [sid for sid, d in indeg.items() if d == 0]
    seen = 0
    while queue:
        sid = queue.pop()
        seen += 1
        for child in children[sid]:
            indeg[child] -= 1
            if indeg[child] == 0:
                queue.append(child)
    if seen != job.num_stages:
        cyclic = sorted(sid for sid, d in indeg.items() if d > 0)
        yield Finding(
            "J001",
            Severity.ERROR,
            _loc(job),
            f"dependency cycle among stages {cyclic}",
            {"stages": cyclic},
        )


@rule("J002", "every stage is reachable and connected", target="job")
def check_reachability(job: Job) -> Iterator[Finding]:
    """Roots exist, every stage descends from a root, no isolated stages."""
    roots = job.roots
    if not roots:
        yield Finding(
            "J002",
            Severity.ERROR,
            _loc(job),
            "job has no root stages (every stage has parents — cycle symptom)",
        )
        return
    reachable = set(roots)
    frontier = list(roots)
    while frontier:
        sid = frontier.pop()
        for child in job.children(sid):
            if child not in reachable:
                reachable.add(child)
                frontier.append(child)
    unreachable = sorted(set(job.stage_ids) - reachable)
    for sid in unreachable:
        yield Finding(
            "J002",
            Severity.ERROR,
            _loc(job, sid),
            "stage is unreachable from every root stage",
        )
    if job.num_stages > 1:
        for sid in job.stage_ids:
            if not job.parents(sid) and not job.children(sid):
                yield Finding(
                    "J002",
                    Severity.WARNING,
                    _loc(job, sid),
                    "stage is isolated (no parents and no children); it never "
                    "interacts with the rest of the job",
                )


@rule("J003", "stage volumes and rates are finite and in range", target="job")
def check_stage_parameters(job: Job) -> Iterator[Finding]:
    for stage in job:
        sid = stage.stage_id
        for name, value in (
            ("input_bytes", stage.input_bytes),
            ("output_bytes", stage.output_bytes),
            ("task_cv", stage.task_cv),
        ):
            if math.isnan(value) or math.isinf(value) or value < 0:
                yield Finding(
                    "J003",
                    Severity.ERROR,
                    _loc(job, sid),
                    f"{name} must be finite and >= 0, got {value!r}",
                    {"field": name, "value": value},
                )
        rate = stage.process_rate
        if math.isnan(rate) or math.isinf(rate) or rate <= 0:
            yield Finding(
                "J003",
                Severity.ERROR,
                _loc(job, sid),
                f"process_rate must be finite and > 0, got {rate!r}",
                {"field": "process_rate", "value": rate},
            )
        if stage.num_tasks < 1:
            yield Finding(
                "J003",
                Severity.ERROR,
                _loc(job, sid),
                f"num_tasks must be >= 1, got {stage.num_tasks}",
                {"field": "num_tasks", "value": stage.num_tasks},
            )


@rule("J004", "shuffle volume is conserved across edges", target="job")
def check_shuffle_conservation(job: Job) -> Iterator[Finding]:
    """A stage cannot shuffle-read much more than its parents produced.

    The paper's LDA Stage 3 legitimately reads 1.3x its parents'
    intermediate data (proactive aggregation re-reads), so a modest
    excess is only reported as INFO; a large one is a WARNING because
    it usually means mis-specified volumes.
    """
    for sid in job.stage_ids:
        parents = job.parents(sid)
        if not parents:
            continue
        stage = job.stage(sid)
        available = sum(job.stage(p).output_bytes for p in parents)
        if stage.input_bytes <= 0:
            continue
        if available <= 0:
            yield Finding(
                "J004",
                Severity.WARNING,
                _loc(job, sid),
                f"stage reads {stage.input_bytes:.0f} B but its parents "
                f"{sorted(parents)} produce no output",
                {"input_bytes": stage.input_bytes, "parent_output_bytes": 0.0},
            )
            continue
        ratio = stage.input_bytes / available
        if ratio > SHUFFLE_RATIO_WARN:
            yield Finding(
                "J004",
                Severity.WARNING,
                _loc(job, sid),
                f"shuffle input is {ratio:.2f}x the parents' total output "
                f"(> {SHUFFLE_RATIO_WARN:g}x); volumes look inconsistent",
                {"ratio": ratio, "input_bytes": stage.input_bytes,
                 "parent_output_bytes": available},
            )
        elif ratio > 1.0 + 1e-9:
            yield Finding(
                "J004",
                Severity.INFO,
                _loc(job, sid),
                f"shuffle input is {ratio:.2f}x the parents' total output "
                "(physically possible, cf. the paper's LDA Stage 3 at 1.3x)",
                {"ratio": ratio},
            )


@rule("J005", "execution paths cover the parallel-stage set", target="job")
def check_path_cover(job: Job) -> Iterator[Finding]:
    """The Fig. 7 decomposition must cover K exactly with valid chains."""
    members = parallel_stage_set(job)
    paths = execution_paths(job)
    covered = {sid for p in paths for sid in p}
    for sid in sorted(members - covered):
        yield Finding(
            "J005",
            Severity.ERROR,
            _loc(job, sid),
            "parallel stage appears in no execution path; Algorithm 1 would "
            "never schedule it",
        )
    for sid in sorted(covered - members):
        yield Finding(
            "J005",
            Severity.ERROR,
            _loc(job, sid),
            "execution path contains a stage outside the parallel-stage set",
        )
    for path in paths:
        for parent, child in zip(path.stages, path.stages[1:]):
            if parent not in ancestors(job, child):
                yield Finding(
                    "J005",
                    Severity.ERROR,
                    _loc(job),
                    f"execution path {list(path.stages)} lists {parent!r} before "
                    f"{child!r} but {parent!r} is not an ancestor of {child!r}",
                    {"path": list(path.stages)},
                )
        if not math.isfinite(path.execution_time) or path.execution_time < 0:
            yield Finding(
                "J005",
                Severity.ERROR,
                _loc(job),
                f"execution path {list(path.stages)} has invalid execution time "
                f"{path.execution_time!r}",
                {"path": list(path.stages), "execution_time": path.execution_time},
            )
