"""Command-line interface: ``python -m repro <command>``.

The subcommands cover the common workflows without writing any code:

* ``compare``   — run a workload under the scheduling strategies and
  print the Fig. 10-style JCT table.
* ``report``    — run Fuxi/Spark/DelayStage with metrics tracking and
  print the interleaving-analytics comparison (overlap ratio,
  complementarity, delay-wait shares, utilization bands; optional
  OpenMetrics / CSV exports).
* ``schedule``  — run Algorithm 1 for a workload and print (optionally
  persist) the delay table.
* ``timeline``  — print the stage gantt of a workload under a strategy.
* ``trace-stats`` — generate the trace twin and print the Sec. 2.1
  statistics and Fig. 2/3 CDF summaries.
* ``replay``    — replay trace jobs under Fuxi vs DelayStage and print
  the Fig. 14-style comparison.
* ``verify``    — static validation of workload DAGs, DelayStage
  schedules, delay tables, and cluster specs (exit 1 on ERROR).
* ``inspect``   — summarize (and optionally schema-validate) a trace
  file written with ``--emit-trace``.
* ``bench``     — performance benchmarks with equivalence checks;
  ``--compare DIR`` additionally diffs against committed baselines.

Output contract: every result-printing subcommand accepts ``--json``,
in which case the machine-readable payload (always carrying the run
manifest) is the *only* thing written to stdout; diagnostics go to
stderr.  ``compare``, ``schedule``, and ``replay`` additionally accept
``--emit-trace PATH`` (write a Perfetto-loadable Chrome trace of the
run) and ``--manifest`` (print the run manifest); ``compare`` and
``replay`` accept ``--progress`` (live stderr heartbeat).

``compare``, ``report``, and ``replay`` accept ``--faults PATH`` (a
declarative fault plan, see ``docs/faults.md``) or ``--chaos-seed N``
(a seeded random plan) to run the simulation under injected faults;
``report`` then adds an availability section contrasting healthy and
degraded runs.

The same three commands accept ``--serve [HOST:]PORT`` (live telemetry
over HTTP while the run executes — ``/metrics`` OpenMetrics,
``/healthz``, ``/runs/<id>`` snapshots, ``/events`` JSON lines —
optionally kept up ``--serve-grace`` seconds after results print) and
``--log-json`` (structured JSON log records correlated with the run
manifest hash); ``repro tail URL`` pretty-prints a server's event
stream.  See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis import render_cdf, render_gantt, render_table, stage_gantt
from repro.cluster import alibaba_sim_cluster, ec2_m4large_cluster, uniform_cluster
from repro.core import DelayStageParams, delay_stage_schedule
from repro.core.properties import read_metrics_properties, write_metrics_properties
from repro.obs import ProgressReporter, Tracer, build_manifest, write_chrome_trace
from repro.schedulers import (
    AggShuffleScheduler,
    DelayStageScheduler,
    FuxiScheduler,
    StockSparkScheduler,
    compare_schedulers,
    replay_batch,
    run_with_scheduler,
)
from repro.trace import (
    TraceGeneratorConfig,
    generate_trace,
    parallel_makespan_fraction,
    stage_count_summary,
    to_job,
)
from repro.workloads import workload_by_name
from repro.workloads.library import EXTRA_WORKLOADS, WORKLOADS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.spec import ClusterSpec
    from repro.dag import Job
    from repro.faults import FaultPlan
    from repro.obs import RunManifest

WORKLOAD_CHOICES = ["ALS", "ConnectedComponents", "CosineSimilarity", "LDA", "TriangleCount"]
#: ``repro verify`` also covers the bonus non-paper workloads.
VERIFY_CHOICES = ["ALS", *WORKLOADS, *EXTRA_WORKLOADS]


def _cluster_for(args: argparse.Namespace) -> ClusterSpec:
    if args.workload == "ALS":
        # The motivation setup: three nodes, data co-hosted.
        return uniform_cluster(3, executors_per_worker=2, nic_mbps=450,
                               disk_mb_per_sec=150, storage_nodes=0)
    return ec2_m4large_cluster(args.workers)


def _echo(message: str) -> None:
    """Diagnostic output; stderr so ``--json`` stdout stays parseable."""
    print(message, file=sys.stderr)


def _fault_plan_for(args: argparse.Namespace, cluster: "ClusterSpec",
                    jobs: "list[Job] | None" = None) -> "FaultPlan | None":
    """The fault plan from ``--faults`` / ``--chaos-seed``, or None.

    ``--faults PATH`` loads a declarative plan and validates it against
    the cluster the command is about to simulate; ``--chaos-seed N``
    generates a seeded random plan against that cluster (``jobs`` feeds
    the lost-shuffle-partition event pool).  The two flags are mutually
    exclusive at the parser level.
    """
    path = getattr(args, "faults", None)
    seed = getattr(args, "chaos_seed", None)
    if path is None and seed is None:
        return None
    from repro.faults import FaultPlan, generate_plan

    if path is not None:
        plan = FaultPlan.load(path)
        plan.validate_against(cluster)
        _echo(f"fault plan: {len(plan.events)} event(s) from {path}")
    else:
        plan = generate_plan(cluster, seed, jobs=jobs)
        _echo(f"fault plan: {len(plan.events)} event(s) from chaos seed {seed}")
    return plan


def _fault_manifest_config(args: argparse.Namespace) -> dict:
    """Manifest entries recording how the fault plan was obtained."""
    return {"faults": getattr(args, "faults", None),
            "chaos_seed": getattr(args, "chaos_seed", None)}


def _finish(args: argparse.Namespace, payload: dict, text: str,
            manifest: "RunManifest | None" = None) -> int:
    """Print the human report, or with ``--json`` the payload."""
    if getattr(args, "as_json", False):
        print(json.dumps(payload, indent=2, sort_keys=True, default=float))
    else:
        print(text)
        if manifest is not None and getattr(args, "manifest", False):
            print()
            print(manifest.summary())
    return 0


def _tracer_for(args: argparse.Namespace) -> "Tracer | None":
    return Tracer() if getattr(args, "emit_trace", None) else None


def _parse_serve(spec: str) -> "tuple[str, int]":
    """``[HOST:]PORT`` → (host, port); bare ``PORT`` binds loopback."""
    host, sep, port = spec.rpartition(":")
    if not sep:
        host, port = "", spec
    try:
        port_num = int(port)
    except ValueError:
        raise SystemExit(f"error: --serve expects [HOST:]PORT, got {spec!r}")
    return host or "127.0.0.1", port_num


def _live_for(args: argparse.Namespace, label: str, total_jobs: int,
              run_id: "str | None" = None):
    """Build the ``--progress``/``--serve``/``--log-json`` telemetry plane.

    Returns ``(publisher, hub, server)``; all None when every flag is
    off, so untelemetered runs construct nothing (the zero-cost /
    zero-output guarantee).  ``--progress`` upgrades the publisher to a
    stderr-rendering :class:`ProgressReporter`; ``--serve`` attaches a
    :class:`~repro.obs.live.LiveHub` to the same bus and starts the
    HTTP server (its URL is echoed to stderr — port 0 binds an
    ephemeral port, so read it from there).
    """
    serve = getattr(args, "serve", None)
    want_progress = getattr(args, "progress", False)
    want_log = getattr(args, "log_json", False)
    if serve is None and not want_progress and not want_log:
        return None, None, None
    from repro.obs.live import LiveHub, LiveServer, TelemetryPublisher

    if want_progress:
        publisher = ProgressReporter(label=label, total_jobs=total_jobs,
                                     run_id=run_id)
    else:
        publisher = TelemetryPublisher(label=label, total_jobs=total_jobs,
                                       run_id=run_id)
    hub = server = None
    if serve is not None:
        hub = LiveHub(bus=publisher.bus)
        host, port = _parse_serve(serve)
        server = LiveServer(hub, host=host, port=port).start()
        _echo(f"live telemetry: {server.url}/metrics")
    return publisher, hub, server


def _attach_log(args: argparse.Namespace, publisher,
                manifest: "RunManifest") -> None:
    """``--log-json``: subscribe a structured logger to the run's bus.

    Every record carries the run id and the manifest's config hash, so
    log lines join to traces, reports, and metrics on one key.
    """
    if publisher is None or not getattr(args, "log_json", False):
        return
    from repro.obs.live import StructuredLogger, bus_logger

    logger = StructuredLogger(run=publisher.run_id,
                              manifest=manifest.config_hash)
    publisher.bus.subscribe(bus_logger(logger))


def _live_finish(args: argparse.Namespace, publisher, hub, server,
                 payload: "dict | None" = None,
                 reports: "dict | None" = None) -> None:
    """Tear the telemetry plane down (after results have printed).

    Publishes ``run_finished`` (idempotent), attaches the final result
    payload to the run snapshot and — for ``report`` — the
    InterleavingReports to ``/metrics`` (which is what makes the final
    scrape value-identical to ``repro report --prometheus``), then
    keeps the server up for ``--serve-grace`` seconds so scrapers can
    collect the final state.
    """
    if publisher is not None:
        publisher.close()
    if hub is not None:
        if reports is not None:
            hub.set_reports(reports)
        hub.finish_run(publisher.run_id, payload)
    if server is not None:
        grace = getattr(args, "serve_grace", 0.0) or 0.0
        if grace > 0:
            _echo(f"serving final telemetry for {grace:.0f}s more at "
                  f"{server.url}")
        server.wait(grace)
        server.close()


def _write_trace(args: argparse.Namespace, tracer: "Tracer | None",
                 manifest: "RunManifest") -> None:
    if tracer is None:
        return
    doc = write_chrome_trace(args.emit_trace, tracer, manifest)
    _echo(f"trace written to {args.emit_trace} "
          f"({len(doc['traceEvents'])} events)")


def cmd_compare(args: argparse.Namespace) -> int:
    cluster = _cluster_for(args)
    job = workload_by_name(args.workload, args.scale)
    plan = _fault_plan_for(args, cluster, jobs=[job])
    tracer = _tracer_for(args)
    # Metrics tracking is only needed when the trace is exported — it is
    # what populates the per-node counter tracks (``inspect --counters``)
    # — and it never changes the simulated dynamics.
    track = tracer is not None
    vector = not getattr(args, "no_vector", False)
    if plan is not None:
        # AggShuffle's pipelined shuffle is incompatible with fault
        # injection, so Fuxi stands in as the immediate-submission
        # baseline; a replanning DelayStage variant joins so recovery
        # with and without Algorithm 1 re-solving can be compared.
        schedulers = [
            StockSparkScheduler(track_metrics=track, fault_plan=plan,
                                vector=vector),
            FuxiScheduler(track_metrics=track, fault_plan=plan,
                          vector=vector),
            DelayStageScheduler(profiled=not args.oracle, track_metrics=track,
                                fault_plan=plan, vector=vector),
            DelayStageScheduler(profiled=not args.oracle, track_metrics=track,
                                fault_plan=plan, replan=True, vector=vector),
        ]
    else:
        schedulers = [
            StockSparkScheduler(track_metrics=track, vector=vector),
            AggShuffleScheduler(track_metrics=track, vector=vector),
            DelayStageScheduler(profiled=not args.oracle, track_metrics=track,
                                vector=vector),
        ]
    manifest = build_manifest(
        seed=0,
        config={"command": "compare", "workload": args.workload,
                "workers": cluster.num_workers, "scale": args.scale,
                "oracle": args.oracle, **_fault_manifest_config(args)},
        jobs=[job],
    )
    publisher, hub, server = _live_for(args, f"compare {args.workload}",
                                       total_jobs=len(schedulers),
                                       run_id="compare")
    _attach_log(args, publisher, manifest)
    if publisher is not None:
        publisher.run_started(workload=args.workload,
                              manifest=manifest.config_hash)
    runs = compare_schedulers(job, cluster, schedulers,
                              tracer=tracer, progress=publisher)
    if publisher is not None:
        publisher.close()
    _write_trace(args, tracer, manifest)
    spark = runs["spark"].jct
    rows = [
        [name, run.jct, f"{1 - run.jct / spark:.1%}"]
        for name, run in runs.items()
    ]
    payload = {
        "command": "compare",
        "workload": args.workload,
        "manifest": manifest.to_dict(),
        "runs": {
            name: {
                "jct_seconds": run.jct,
                "speedup_vs_spark": 1 - run.jct / spark,
                "counters": run.result.counters,
            }
            for name, run in runs.items()
        },
    }
    if plan is not None:
        payload["fault_plan"] = plan.to_dict()
        for name, run in runs.items():
            stats = run.result.faults
            payload["runs"][name]["faults"] = (
                stats.to_dict() if stats is not None else None
            )
    title = f"{args.workload} on {cluster.num_workers} workers"
    if plan is not None:
        title += f" ({len(plan.events)} fault(s) injected)"
    text = render_table(["strategy", "JCT (s)", "vs spark"], rows, title=title)
    ret = _finish(args, payload, text, manifest)
    _live_finish(args, publisher, hub, server, payload=payload)
    return ret


def cmd_report(args: argparse.Namespace) -> int:
    """Interleaving-analytics comparison report (``repro report``)."""
    from repro.obs import (
        interleaving_report,
        render_markdown_report,
        reports_to_csv,
        reports_to_openmetrics,
    )

    cluster = _cluster_for(args)
    job = workload_by_name(args.workload, args.scale)
    plan = _fault_plan_for(args, cluster, jobs=[job])
    manifest = build_manifest(
        seed=0,
        config={"command": "report", "workload": args.workload,
                "workers": cluster.num_workers, "scale": args.scale,
                "oracle": args.oracle, **_fault_manifest_config(args)},
        jobs=[job],
    )
    has_faulty = plan is not None and not plan.is_empty
    publisher, hub, server = _live_for(
        args, f"report {args.workload}",
        total_jobs=6 if has_faulty else 3, run_id="report",
    )
    _attach_log(args, publisher, manifest)
    if publisher is not None:
        publisher.run_started(workload=args.workload,
                              manifest=manifest.config_hash)
    runs = compare_schedulers(
        job,
        cluster,
        [
            FuxiScheduler(track_metrics=True),
            StockSparkScheduler(track_metrics=True),
            DelayStageScheduler(profiled=not args.oracle, track_metrics=True),
        ],
        progress=publisher,
    )
    reports = {
        name: interleaving_report(run.result, job, label=name)
        for name, run in runs.items()
    }
    availability = None
    if has_faulty:
        # The interleaving analytics above stay healthy-run; availability
        # contrasts them with the same schedulers under the fault plan.
        from repro.faults import availability_report

        faulty = compare_schedulers(
            job,
            cluster,
            [
                FuxiScheduler(track_metrics=True, fault_plan=plan),
                StockSparkScheduler(track_metrics=True, fault_plan=plan),
                DelayStageScheduler(profiled=not args.oracle,
                                    track_metrics=True, fault_plan=plan),
            ],
            progress=publisher,
        )
        availability = availability_report(
            {name: run.result for name, run in runs.items()},
            {name: run.result for name, run in faulty.items()},
        )
    if publisher is not None:
        publisher.close()
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(reports_to_csv(reports))
        _echo(f"CSV report written to {args.csv}")
    if args.prometheus:
        with open(args.prometheus, "w", encoding="utf-8") as fh:
            fh.write(reports_to_openmetrics(reports))
        _echo(f"OpenMetrics report written to {args.prometheus}")
    payload = {
        "command": "report",
        "workload": args.workload,
        "manifest": manifest.to_dict(),
        "reports": {name: rep.to_dict() for name, rep in reports.items()},
    }
    text = render_markdown_report(
        reports,
        title=(f"Interleaving report — {args.workload} on "
               f"{cluster.num_workers} workers"),
    )
    if availability is not None:
        from repro.faults import render_availability

        payload["availability"] = [row.to_dict() for row in availability]
        payload["fault_plan"] = plan.to_dict()
        text += "\n\n" + render_availability(availability)
    ret = _finish(args, payload, text, manifest)
    _live_finish(args, publisher, hub, server, payload=payload,
                 reports=reports)
    return ret


def cmd_why(args: argparse.Namespace) -> int:
    """Critical-path blame attribution (``repro why``).

    Runs the same Fuxi/Spark/DelayStage comparison as ``repro report``,
    then walks each finished run's critical path and attributes every
    second of it to one blame category (compute, network, disk,
    delay-wait, contention, fault-retry, dependency) — the categories
    sum to the measured JCT/makespan *bit-for-bit*.  ``--diff`` adds
    the per-category deltas between two runs, making "DelayStage
    converted N seconds of contention into overlap" a first-class
    output.
    """
    from repro.analysis import render_blame_bars
    from repro.obs import (
        blame_diff,
        render_blame_markdown,
        render_diff_markdown,
        run_blame,
    )

    cluster = _cluster_for(args)
    job = workload_by_name(args.workload, args.scale)
    plan = _fault_plan_for(args, cluster, jobs=[job])
    manifest = build_manifest(
        seed=0,
        config={"command": "why", "workload": args.workload,
                "workers": cluster.num_workers, "scale": args.scale,
                "oracle": args.oracle, "diff": args.diff,
                **_fault_manifest_config(args)},
        jobs=[job],
    )
    # Blame reads demand accounting (on by default), not the metrics
    # counters, so the runs skip counter tracking entirely.
    schedulers = [
        FuxiScheduler(track_metrics=False, fault_plan=plan),
        StockSparkScheduler(track_metrics=False, fault_plan=plan),
        DelayStageScheduler(profiled=not args.oracle, track_metrics=False,
                            fault_plan=plan),
    ]
    publisher, hub, server = _live_for(args, f"why {args.workload}",
                                       total_jobs=len(schedulers),
                                       run_id="why")
    _attach_log(args, publisher, manifest)
    if publisher is not None:
        publisher.run_started(workload=args.workload,
                              manifest=manifest.config_hash)
    runs = compare_schedulers(job, cluster, schedulers, progress=publisher)
    blames = {
        name: run_blame(run.result, job, label=name, delays=run.delay_table)
        for name, run in runs.items()
    }
    if publisher is not None:
        for name, blame in blames.items():
            publisher.blame_computed(name, blame.categories,
                                     blame.makespan_seconds,
                                     top_jobs=blame.top_jobs())
        publisher.close()
    for name, blame in blames.items():
        if not blame.identity_exact:  # pragma: no cover - invariant
            _echo(f"warning: blame identity not exact for {name!r}")
    if args.job is not None:
        for name, blame in blames.items():
            if args.job not in blame.jobs:
                _echo(f"error: run {name!r} has no finished job "
                      f"{args.job!r} (jobs: {sorted(blame.jobs)})")
                return 2
    diff = None
    if args.diff:
        for role, name in (("baseline", args.baseline),
                           ("candidate", args.candidate)):
            if name not in blames:
                _echo(f"error: --diff {role} {name!r} is not one of "
                      f"{sorted(blames)}")
                return 2
        diff = blame_diff(blames[args.baseline], blames[args.candidate])

    payload = {
        "command": "why",
        "workload": args.workload,
        "manifest": manifest.to_dict(),
        "blames": {name: blame.to_dict() for name, blame in blames.items()},
    }
    if args.job is not None:
        payload["job"] = args.job
    if diff is not None:
        payload["diff"] = diff.to_dict()

    if args.md:
        text = render_blame_markdown(
            blames,
            title=(f"Critical-path blame — {args.workload} on "
                   f"{cluster.num_workers} workers"),
        )
    else:
        sections = []
        for name, blame in blames.items():
            focus = blame.jobs[args.job] if args.job else None
            total = (focus.jct_seconds if focus is not None
                     else blame.makespan_seconds)
            categories = (focus.categories if focus is not None
                          else blame.categories)
            what = (f"job {args.job} JCT" if focus is not None
                    else f"makespan (job {blame.makespan_job})")
            sections.append(render_blame_bars(
                categories, total,
                title=f"{name}: {what} {total:.1f} s",
            ))
            if focus is not None:
                rows = [
                    [sb.stage_id,
                     f"{sb.finish - sb.start:.1f}",
                     max(sb.seconds, key=lambda c: (sb.seconds[c], c)),
                     "-" if sb.chosen_delay is None
                     else f"{sb.chosen_delay:.1f}",
                     sb.retries]
                    for sb in focus.stages
                ]
                sections.append(render_table(
                    ["stage", "span (s)", "dominant", "chosen delay", "retries"],
                    rows, title=f"{name}: critical chain"))
        text = "\n\n".join(sections)
    if diff is not None:
        text += "\n\n" + render_diff_markdown(diff)
    ret = _finish(args, payload, text, manifest)
    _live_finish(args, publisher, hub, server, payload=payload)
    return ret


def cmd_schedule(args: argparse.Namespace) -> int:
    cluster = _cluster_for(args)
    job = workload_by_name(args.workload, args.scale)
    tracer = _tracer_for(args)
    schedule = delay_stage_schedule(
        job, cluster,
        DelayStageParams(order=args.order, max_slots=args.max_slots),
        tracer=tracer,
    )
    manifest = build_manifest(
        seed=0,
        config={"command": "schedule", "workload": args.workload,
                "workers": cluster.num_workers, "scale": args.scale,
                "order": args.order, "max_slots": args.max_slots},
        jobs=[job],
    )
    _write_trace(args, tracer, manifest)
    if args.output:
        write_metrics_properties(args.output, job.job_id, schedule.delays)
        _echo(f"delay table written to {args.output}")
    rows = [[sid, f"{x:.1f}"] for sid, x in sorted(schedule.delays.items())]
    payload = {
        "command": "schedule",
        "workload": args.workload,
        "manifest": manifest.to_dict(),
        "job_id": job.job_id,
        "delays": {sid: float(x) for sid, x in sorted(schedule.delays.items())},
        "predicted_makespan_seconds": schedule.predicted_makespan,
        "baseline_makespan_seconds": schedule.baseline_makespan,
        "compute_seconds": schedule.compute_seconds,
        "order": args.order,
    }
    text = render_table(
        ["stage", "delay (s)"],
        rows,
        title=(
            f"DelayStage schedule for {args.workload} "
            f"(predicted makespan {schedule.predicted_makespan:.1f} s, "
            f"baseline {schedule.baseline_makespan:.1f} s, "
            f"computed in {schedule.compute_seconds * 1000:.0f} ms)"
        ),
    )
    return _finish(args, payload, text, manifest)


def cmd_timeline(args: argparse.Namespace) -> int:
    cluster = _cluster_for(args)
    job = workload_by_name(args.workload, args.scale)
    scheduler = {
        "spark": StockSparkScheduler(track_metrics=False),
        "aggshuffle": AggShuffleScheduler(track_metrics=False),
        "delaystage": DelayStageScheduler(profiled=not args.oracle, track_metrics=False),
    }[args.strategy]
    run = run_with_scheduler(job, cluster, scheduler)
    rows = stage_gantt(run.result, job.job_id)
    manifest = build_manifest(
        seed=0,
        config={"command": "timeline", "workload": args.workload,
                "workers": cluster.num_workers, "scale": args.scale,
                "strategy": args.strategy, "oracle": args.oracle},
        jobs=[job],
    )
    payload = {
        "command": "timeline",
        "workload": args.workload,
        "manifest": manifest.to_dict(),
        "strategy": args.strategy,
        "jct_seconds": run.jct,
        "counters": run.result.counters,
        "stages": [
            {"stage_id": r.stage_id, "ready": r.ready, "submit": r.submit,
             "read_done": r.read_done, "finish": r.finish}
            for r in rows
        ],
    }
    text = render_gantt(
        rows,
        title=(
            f"{args.workload} under {args.strategy} — JCT {run.jct:.1f} s "
            "(▒ shuffle read, █ processing + write)"
        ),
    )
    return _finish(args, payload, text)


def cmd_bounds(args: argparse.Namespace) -> int:
    from repro.core import delay_stage_schedule, makespan_bounds, optimality_gap
    from repro.core.delaystage import DelayStageParams

    cluster = _cluster_for(args)
    job = workload_by_name(args.workload, args.scale)
    bounds = makespan_bounds(job, cluster)
    schedule = delay_stage_schedule(job, cluster, DelayStageParams(max_slots=args.max_slots))
    gap = optimality_gap(schedule.predicted_makespan, bounds)
    manifest = build_manifest(
        seed=0,
        config={"command": "bounds", "workload": args.workload,
                "workers": cluster.num_workers, "scale": args.scale,
                "max_slots": args.max_slots},
        jobs=[job],
    )
    payload = {
        "command": "bounds",
        "workload": args.workload,
        "manifest": manifest.to_dict(),
        "bounds": {
            "critical_path": bounds.critical_path,
            "cpu_work": bounds.cpu_work,
            "storage_egress": bounds.storage_egress,
            "network_volume": bounds.network_volume,
            "disk_volume": bounds.disk_volume,
            "binding": bounds.binding,
            "bound": bounds.bound,
        },
        "predicted_makespan_seconds": schedule.predicted_makespan,
        "optimality_gap": gap,
    }
    rows = [
        ["critical path", f"{bounds.critical_path:.1f}"],
        ["CPU work", f"{bounds.cpu_work:.1f}"],
        ["storage egress", f"{bounds.storage_egress:.1f}"],
        ["network volume", f"{bounds.network_volume:.1f}"],
        ["disk volume", f"{bounds.disk_volume:.1f}"],
    ]
    text = render_table(
        ["lower bound", "seconds"],
        rows,
        title=(
            f"{args.workload}: makespan bounds (binding: {bounds.binding}); "
            f"Algorithm 1 achieves {schedule.predicted_makespan:.1f} s — "
            f"gap {gap:.1%}"
        ),
    )
    return _finish(args, payload, text)


def cmd_trace_stats(args: argparse.Namespace) -> int:
    trace = generate_trace(TraceGeneratorConfig(num_jobs=args.jobs), rng=args.seed)
    summary = stage_count_summary(trace)
    fr = np.array([f for f in map(parallel_makespan_fraction, trace) if f > 0])
    mean_fraction = float(fr.mean()) if fr.size else 0.0
    manifest = build_manifest(
        seed=args.seed,
        config={"command": "trace-stats", "jobs": args.jobs},
    )
    payload = {
        "command": "trace-stats",
        "manifest": manifest.to_dict(),
        "jobs": len(trace),
        "fraction_jobs_with_parallel": summary.fraction_jobs_with_parallel,
        "parallel_stage_fraction": summary.parallel_stage_fraction,
        "mean_parallel_makespan_fraction": mean_fraction,
    }
    lines = [
        f"jobs: {len(trace)}",
        f"jobs with parallel stages: {summary.fraction_jobs_with_parallel:.1%} (paper 68.6%)",
        f"parallel share of stages:  {summary.parallel_stage_fraction:.1%} (paper 79.1%)",
        f"mean parallel-makespan/JCT: {mean_fraction:.1%} (paper 82.3%)\n",
        render_cdf(
            {"stages/job": summary.stages_per_job, "parallel/job": summary.parallel_per_job},
            title="Fig. 2 — stage counts per job",
        ),
    ]
    return _finish(args, payload, "\n".join(lines))


def cmd_replay(args: argparse.Namespace) -> int:
    cluster = alibaba_sim_cluster(
        num_machines=3, storage_nodes=1, nic_mbps_range=(600, 2000), rng=0
    )
    trace = generate_trace(
        TraceGeneratorConfig(num_jobs=args.jobs * 2, replay_workers=3,
                             max_stages=60, replay_read_mb_per_sec=85.0),
        rng=args.seed,
    )
    jobs = [to_job(tj) for tj in trace[: args.jobs]]
    plan = _fault_plan_for(args, cluster, jobs=jobs)
    tracer = _tracer_for(args)
    if plan is not None and tracer is not None:
        _echo("error: --emit-trace is not supported together with "
              "--faults/--chaos-seed on replay (use compare for a "
              "fault-annotated trace)")
        return 2
    incremental = not getattr(args, "no_incremental", False)
    memo = not getattr(args, "no_memo", False)
    vector = not getattr(args, "no_vector", False)
    fuxi = FuxiScheduler(track_metrics=False, contention_penalty=args.penalty,
                         incremental=incremental, fault_plan=plan,
                         vector=vector)
    ds = DelayStageScheduler(
        profiled=False, track_metrics=False, contention_penalty=args.penalty,
        params=DelayStageParams(max_slots=12, memoize=memo, bound_prune=memo),
        incremental=incremental, fault_plan=plan,
        replan=plan is not None, vector=vector,
    )
    manifest = build_manifest(
        seed=args.seed,
        config={"command": "replay", "jobs": args.jobs,
                "penalty": args.penalty, **_fault_manifest_config(args)},
        jobs=jobs,
    )
    publisher, hub, server = _live_for(args, "replay",
                                       total_jobs=2 * len(jobs),
                                       run_id="replay")
    _attach_log(args, publisher, manifest)
    if publisher is not None:
        publisher.run_started(jobs=len(jobs), seed=args.seed,
                              manifest=manifest.config_hash)
    fault_summary = None
    if plan is not None:
        from repro.simulator.parallel import replay_outcomes

        done = publisher.shard_done if publisher is not None else None
        out_f = replay_outcomes(jobs, cluster, fuxi, processes=args.parallel,
                                on_shard_done=done)
        out_d = replay_outcomes(jobs, cluster, ds, processes=args.parallel,
                                on_shard_done=done)
        # Compare survivor populations on the jobs both strategies
        # completed; a failed job's "JCT" is its time-to-failure, which
        # would poison the mean.
        both_ok = [i for i in range(len(jobs))
                   if not out_f[i][1] and not out_d[i][1]]
        jct_f = [out_f[i][0] for i in both_ok]
        jct_d = [out_d[i][0] for i in both_ok]
        fault_summary = {
            "plan_events": len(plan.events),
            "jobs_compared": len(both_ok),
            "fuxi": {"jobs_failed": sum(1 for _, failed, _ in out_f if failed),
                     "retries": sum(r for _, _, r in out_f)},
            "delaystage": {"jobs_failed": sum(1 for _, failed, _ in out_d if failed),
                           "retries": sum(r for _, _, r in out_d)},
        }
    else:
        jct_f = replay_batch(jobs, cluster, fuxi, processes=args.parallel,
                             tracer=tracer, progress=publisher)
        jct_d = replay_batch(jobs, cluster, ds, processes=args.parallel,
                             tracer=tracer, progress=publisher)
    if publisher is not None:
        publisher.close()
    _write_trace(args, tracer, manifest)
    improvement = float(1 - np.mean(jct_d) / np.mean(jct_f))
    payload = {
        "command": "replay",
        "manifest": manifest.to_dict(),
        "jobs": len(jobs),
        "penalty": args.penalty,
        "runs": {
            "fuxi": {"mean_jct_seconds": float(np.mean(jct_f)),
                     "median_jct_seconds": float(np.median(jct_f))},
            "delaystage": {"mean_jct_seconds": float(np.mean(jct_d)),
                           "median_jct_seconds": float(np.median(jct_d))},
        },
        "improvement_vs_fuxi": improvement,
    }
    rows = [
        ["fuxi", float(np.mean(jct_f)), float(np.median(jct_f))],
        ["delaystage", float(np.mean(jct_d)), float(np.median(jct_d))],
    ]
    title = f"trace replay — {len(jobs)} jobs (contention penalty {args.penalty})"
    extra = f"\n\nDelayStage vs Fuxi: {improvement:.1%} (paper 36.6%)"
    if fault_summary is not None:
        payload["faults"] = fault_summary
        title = (f"trace replay under faults — {fault_summary['jobs_compared']}"
                 f"/{len(jobs)} jobs completed under both strategies")
        extra = f"\n\nDelayStage vs Fuxi: {improvement:.1%} (faults injected)"
        extra += (
            f"\nfaults: fuxi failed {fault_summary['fuxi']['jobs_failed']} "
            f"job(s) with {fault_summary['fuxi']['retries']} retries; "
            f"delaystage+replan failed "
            f"{fault_summary['delaystage']['jobs_failed']} job(s) with "
            f"{fault_summary['delaystage']['retries']} retries"
        )
    text = render_table(["strategy", "mean JCT (s)", "median (s)"], rows,
                        title=title) + extra
    ret = _finish(args, payload, text, manifest)
    _live_finish(args, publisher, hub, server, payload=payload)
    return ret


def cmd_inspect(args: argparse.Namespace) -> int:
    from repro.obs import (
        counter_track_summary,
        decision_audits,
        delay_tables,
        read_chrome_trace,
        render_counter_summary,
        render_summary,
        validate_chrome_trace,
    )
    from repro.obs.inspect import counters_of, manifest_of

    try:
        doc = read_chrome_trace(args.trace)
    except (OSError, ValueError) as exc:
        _echo(f"error: cannot read trace {args.trace!r}: {exc}")
        return 1
    errors = validate_chrome_trace(doc)
    for err in errors:
        _echo(f"schema: {err}")
    if args.as_json:
        payload = {
            "command": "inspect",
            "trace": args.trace,
            "valid": not errors,
            "schema_errors": errors,
            "manifest": manifest_of(doc),
            "delay_tables": delay_tables(doc),
            "decision_audits": decision_audits(doc),
            "counters": counters_of(doc),
        }
        if args.counters:
            payload["counter_summary"] = counter_track_summary(doc)
        print(json.dumps(payload, indent=2, sort_keys=True, default=float))
    elif args.counters:
        print(render_counter_summary(doc))
    else:
        print(render_summary(doc, max_stages=args.max_stages))
    if args.validate and errors:
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the streaming scheduler daemon (``repro serve``).

    Boots the PR-7 telemetry plane with the service control surface
    attached, optionally plays an open-loop arrival schedule sampled
    from the trace twin, and runs until drained: auto-drain after the
    sampled arrivals finish (or ``--drain-after``), a client's ``POST
    /service/drain``, or the first SIGINT/SIGTERM.  A second signal
    hard-stops without waiting for in-flight jobs.
    """
    import asyncio
    import signal

    from repro.obs.live import LiveHub, LiveServer, TelemetryPublisher
    from repro.service import (
        AdmissionConfig,
        ServiceCore,
        ServiceDaemon,
        WallClock,
    )
    from repro.trace.generator import open_loop_arrivals

    cluster = alibaba_sim_cluster(
        num_machines=3, storage_nodes=1, nic_mbps_range=(600, 2000), rng=0
    )
    trace_cfg = TraceGeneratorConfig(
        num_jobs=max(args.jobs, 1), replay_workers=3, max_stages=60,
        replay_read_mb_per_sec=85.0,
    )
    arrivals = None
    arrival_jobs: "list[Job]" = []
    drain_after = args.drain_after
    if args.jobs > 0:
        schedule = open_loop_arrivals(
            trace_cfg, rng=args.seed, rate_jobs_per_s=args.rate,
            num_jobs=args.jobs,
        )
        arrivals = [(t, to_job(tj, trace_cfg)) for t, tj in schedule]
        arrival_jobs = [job for _, job in arrivals]
        if drain_after is None:
            # Batch-style invocation: drain once the sampled arrivals
            # are in, so the command terminates on its own.
            drain_after = schedule[-1][0]
    plan = _fault_plan_for(args, cluster, jobs=arrival_jobs or None)
    if args.strategy == "fuxi":
        scheduler = FuxiScheduler(track_metrics=False, fault_plan=plan)
    else:
        scheduler = DelayStageScheduler(
            profiled=False, track_metrics=False,
            params=DelayStageParams(max_slots=12),
            fault_plan=plan, replan=plan is not None,
        )
    publisher = TelemetryPublisher(label="serve", run_id="serve",
                                   total_jobs=args.jobs or None)
    core = ServiceCore(
        cluster, scheduler, slots=args.slots,
        admission=AdmissionConfig(max_pending=args.max_pending,
                                  max_stages=args.max_stages),
        publisher=publisher,
    )
    daemon = ServiceDaemon(core, WallClock(scale=args.time_scale),
                           arrivals=arrivals, drain_after=drain_after)
    hub = LiveHub(bus=publisher.bus)
    host, port = _parse_serve(args.bind)
    server = LiveServer(hub, host=host, port=port, control=daemon).start()
    _echo(f"service control: {server.url}/service "
          f"(telemetry at {server.url}/metrics)")
    publisher.run_started(
        jobs=args.jobs or None, seed=args.seed, rate=args.rate,
        slots=args.slots, max_pending=args.max_pending,
        time_scale=args.time_scale, scheduler=scheduler.name,
    )

    async def _run() -> dict:
        loop = asyncio.get_running_loop()

        def on_signal() -> None:
            if not core.draining:
                _echo("serve: drain requested (signal); "
                      "in-flight jobs will finish — signal again to stop")
                daemon.drain()
            else:
                _echo("serve: hard stop")
                daemon.stop()

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, on_signal)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                break  # non-main thread / platform without signal support
        return await daemon.run()

    try:
        stats = asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive fallback
        daemon.stop()
        stats = daemon.stats()
    payload = {
        "command": "serve",
        "service": stats,
        "jobs": daemon.jobs_list(),
    }
    if args.snapshot:
        with open(args.snapshot, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True, default=float)
        _echo(f"serve: drain snapshot written to {args.snapshot}")
    publisher.close()
    hub.finish_run("serve", {"service": stats})
    grace = args.serve_grace or 0.0
    if grace > 0:
        _echo(f"serving final telemetry for {grace:.0f}s more at {server.url}")
    server.wait(grace)
    server.close()
    counters = stats["counters"]
    jcts = [j["jct"] for j in payload["jobs"] if j.get("jct") is not None]
    rows = [[state, count] for state, count in sorted(stats["states"].items())]
    text = render_table(
        ["state", "jobs"], rows,
        title=(f"serve — {counters['submitted']} submitted, "
               f"{counters['rejected']} shed, peak queue "
               f"{stats['peak_queue_depth']}"),
    )
    if jcts:
        text += (f"\n\nmean JCT {float(np.mean(jcts)):.1f}s over "
                 f"{len(jcts)} completion(s) "
                 f"(service time {stats['now']:.1f}s)")
    return _finish(args, payload, text)


def cmd_tail(args: argparse.Namespace) -> int:
    """Pretty-print a live server's /events stream (``repro tail URL``)."""
    from repro.obs.live import tail

    try:
        count = tail(args.url, max_events=args.max, raw=args.raw,
                     timeout=args.timeout, reconnect=args.reconnect)
    except ValueError as exc:
        _echo(f"error: {exc}")
        return 2
    except OSError as exc:
        _echo(f"error: cannot reach {args.url!r}: {exc}")
        return 1
    _echo(f"tail: {count} event(s)")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_benchmarks, write_results

    vector = not getattr(args, "no_vector", False)
    if getattr(args, "profile", False):
        from repro.bench import profile_benchmarks, write_profiles

        pairs = profile_benchmarks(args.benchmarks, quick=args.quick,
                                   vector=vector)
        reports = [report for _, report in pairs]
        # Profiled wall times are distorted (the tracer taxes Python
        # calls, not numpy kernels), so only the hotspot tables and the
        # equivalence bits leave this run — never BENCH json.
        paths = write_profiles(reports, args.out) if args.out else []
        payload = {
            "command": "bench",
            "quick": args.quick,
            "profile": True,
            "vector": vector,
            "results": [
                {"name": rep.name, "equivalent": res.equivalent,
                 "total_calls": rep.total_calls,
                 "profiled_seconds": rep.total_seconds}
                for res, rep in pairs
            ],
            "written": paths,
        }
        lines = [rep.summary() for rep in reports]
        for path in paths:
            lines.append(f"wrote {path}")
        ok = all(res.equivalent for res, _ in pairs)
        if not ok:
            lines.append("FAIL: optimized and escape-hatch results differ")
        _finish(args, payload, "\n".join(lines))
        return 0 if ok else 1

    results = run_benchmarks(args.benchmarks, quick=args.quick, vector=vector)
    paths = write_results(results, args.out) if args.out else []
    payload = {
        "command": "bench",
        "quick": args.quick,
        "vector": vector,
        "results": [r.to_dict() for r in results],
        "written": paths,
    }
    lines = [r.summary() for r in results]
    for path in paths:
        lines.append(f"wrote {path}")
    ok = all(r.equivalent for r in results)
    if args.compare:
        from repro.bench import (
            compare_to_baselines,
            has_failures,
            render_findings,
        )

        findings = compare_to_baselines(
            results, args.compare, wall_threshold=args.threshold
        )
        payload["watchdog"] = {
            "baseline_dir": args.compare,
            "threshold": args.threshold,
            "findings": [
                {"name": f.name, "severity": f.severity, "message": f.message}
                for f in findings
            ],
        }
        lines.append(render_findings(findings))
        ok = ok and not has_failures(findings)
    if not all(r.equivalent for r in results):
        lines.append("FAIL: optimized and escape-hatch results differ")
    _finish(args, payload, "\n".join(lines))
    return 0 if ok else 1


def _verify_workload(name: str, scale: float) -> "Job":
    if name in EXTRA_WORKLOADS:
        return EXTRA_WORKLOADS[name](scale)
    return workload_by_name(name, scale)


def _cmd_verify_flow(args: argparse.Namespace) -> int:
    """``repro verify --flow``: whole-program determinism analysis."""
    from repro.verify.flow import FlowConfig, analyze_project
    from repro.verify.flow.analyzer import default_baseline_path

    baseline = args.flow_baseline or default_baseline_path()
    config = FlowConfig(baseline_path=baseline, cache_dir=args.flow_cache)
    result = analyze_project(args.flow_root, config=config)
    if args.as_json:
        print(json.dumps(result.to_payload(), indent=2))
    else:
        print(result.render())
    return 0 if result.ok else 1


def cmd_verify(args: argparse.Namespace) -> int:
    if args.flow:
        return _cmd_verify_flow(args)

    from repro.verify import (
        Finding,
        Report,
        Severity,
        validate_cluster,
        validate_delay_table,
        validate_job,
        validate_schedule,
    )

    names = args.workloads or VERIFY_CHOICES
    delay_tables: dict[str, dict[str, float]] = {}
    if args.delays:
        try:
            delay_tables = read_metrics_properties(args.delays)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read delay table {args.delays!r}: {exc}",
                  file=sys.stderr)
            return 1
    matched_jobs: set[str] = set()

    reports: list[tuple[str, Report]] = []
    for name in names:
        ns = argparse.Namespace(workload=name, workers=args.workers)
        cluster = _cluster_for(ns)
        job = _verify_workload(name, args.scale)
        report = Report()
        report.extend(validate_cluster(cluster))
        report.extend(validate_job(job))
        if args.schedule:
            schedule = delay_stage_schedule(
                job, cluster, DelayStageParams(max_slots=args.max_slots)
            )
            report.extend(validate_schedule(schedule, job))
        if job.job_id in delay_tables:
            matched_jobs.add(job.job_id)
            report.extend(validate_delay_table(job, delay_tables[job.job_id]))
        reports.append((name, report))

    for job_id in sorted(set(delay_tables) - matched_jobs):
        orphan = Report()
        orphan.add(Finding(
            rule="V000", severity=Severity.ERROR, subject=f"delays:{job_id}",
            message=f"delay table names job {job_id!r}, which matches no "
                    "verified workload",
        ))
        reports.append((f"delays:{job_id}", orphan))

    any_errors = any(not rep.ok for _, rep in reports)
    if args.as_json:
        payload = {
            "ok": not any_errors,
            "targets": {
                name: json.loads(rep.to_json(indent=None))
                for name, rep in reports
            },
        }
        print(json.dumps(payload, indent=2))
    else:
        for name, rep in reports:
            status = "OK" if rep.ok else "FAIL"
            print(f"{name}: {status} ({len(rep)} finding(s))")
            for finding in rep:
                print(f"  {finding}")
        total = sum(len(rep) for _, rep in reports)
        print(f"\nverified {len(reports)} target(s), {total} finding(s), "
              f"{'ERRORS PRESENT' if any_errors else 'no errors'}")
    return 1 if any_errors else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DelayStage (ICPP 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", choices=WORKLOAD_CHOICES, default="CosineSimilarity")
        p.add_argument("--workers", type=int, default=30, help="EC2 worker count")
        p.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")

    def add_json_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--json", action="store_true", dest="as_json",
                       help="emit a machine-readable payload on stdout")

    def add_trace_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--emit-trace", metavar="PATH", dest="emit_trace",
                       help="write a Perfetto-loadable Chrome trace here")
        p.add_argument("--manifest", action="store_true",
                       help="also print the run manifest (seeds, config hash)")

    def add_progress_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--progress", action="store_true",
                       help="stream a live heartbeat (jobs done, events/s, "
                            "running makespan, ETA) to stderr")

    def add_serve_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--serve", metavar="[HOST:]PORT",
                       help="serve live telemetry over HTTP during the run: "
                            "/metrics (OpenMetrics), /healthz, /runs/<id> "
                            "(JSON snapshot), /events (JSON lines); port 0 "
                            "binds an ephemeral port (URL echoed on stderr)")
        p.add_argument("--serve-grace", type=float, default=0.0,
                       dest="serve_grace", metavar="SECONDS",
                       help="keep the telemetry server up this long after "
                            "results print, so scrapers can collect the "
                            "final state")
        p.add_argument("--log-json", action="store_true", dest="log_json",
                       help="emit structured JSON log records (one per run "
                            "event, correlated with the manifest hash) to "
                            "stderr")

    def add_faults_args(p: argparse.ArgumentParser) -> None:
        g = p.add_mutually_exclusive_group()
        g.add_argument("--faults", metavar="PATH",
                       help="inject faults from this declarative plan "
                            "(JSON; see docs/faults.md)")
        g.add_argument("--chaos-seed", type=int, dest="chaos_seed",
                       metavar="N",
                       help="inject a seeded random fault plan (same N, "
                            "same faults, same results)")

    p = sub.add_parser("compare", help="JCT under Spark/AggShuffle/DelayStage")
    add_workload_args(p)
    p.add_argument("--oracle", action="store_true",
                   help="plan on true parameters instead of profiling")
    p.add_argument("--no-vector", action="store_true",
                   help="bisection switch: scalar object engine instead "
                        "of the vectorized event core (results "
                        "identical, slower)")
    add_faults_args(p)
    add_json_arg(p)
    add_trace_args(p)
    add_progress_arg(p)
    add_serve_args(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "report",
        help="interleaving analytics under Fuxi/Spark/DelayStage "
             "(overlap, complementarity, delay-wait, utilization bands)",
    )
    add_workload_args(p)
    p.add_argument("--oracle", action="store_true",
                   help="plan on true parameters instead of profiling")
    p.add_argument("--csv", metavar="PATH",
                   help="also write the report as CSV here")
    p.add_argument("--prometheus", metavar="PATH",
                   help="also write Prometheus/OpenMetrics text here")
    add_faults_args(p)
    add_json_arg(p)
    add_progress_arg(p)
    add_serve_args(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "why",
        help="critical-path blame: where each second of JCT/makespan "
             "went (exact per-category decomposition, optional "
             "cross-scheduler diff)",
    )
    add_workload_args(p)
    p.add_argument("--oracle", action="store_true",
                   help="plan on true parameters instead of profiling")
    p.add_argument("--job", default=None, metavar="ID",
                   help="blame one job's JCT instead of the makespan "
                        "(also prints its critical chain)")
    p.add_argument("--md", action="store_true",
                   help="full markdown blame tables instead of the "
                        "bar view")
    p.add_argument("--diff", action="store_true",
                   help="report per-category savings of --candidate "
                        "over --baseline")
    p.add_argument("--baseline", default="fuxi",
                   choices=["fuxi", "spark", "delaystage"],
                   help="diff baseline run (default: fuxi)")
    p.add_argument("--candidate", default="delaystage",
                   choices=["fuxi", "spark", "delaystage"],
                   help="diff candidate run (default: delaystage)")
    add_faults_args(p)
    add_json_arg(p)
    add_progress_arg(p)
    add_serve_args(p)
    p.set_defaults(func=cmd_why)

    p = sub.add_parser("schedule", help="compute a DelayStage delay table")
    add_workload_args(p)
    p.add_argument("--order", choices=["descending", "random", "ascending"],
                   default="descending")
    p.add_argument("--max-slots", type=int, default=48, dest="max_slots")
    p.add_argument("--output", help="write metrics.properties here")
    add_json_arg(p)
    add_trace_args(p)
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("timeline", help="print a stage gantt")
    add_workload_args(p)
    p.add_argument("--strategy", choices=["spark", "aggshuffle", "delaystage"],
                   default="delaystage")
    p.add_argument("--oracle", action="store_true")
    add_json_arg(p)
    p.set_defaults(func=cmd_timeline)

    p = sub.add_parser("bounds", help="makespan lower bounds + Alg. 1 gap")
    add_workload_args(p)
    p.add_argument("--max-slots", type=int, default=24, dest="max_slots")
    add_json_arg(p)
    p.set_defaults(func=cmd_bounds)

    p = sub.add_parser("trace-stats", help="trace-twin statistics (Figs. 2-3)")
    p.add_argument("--jobs", type=int, default=500)
    p.add_argument("--seed", type=int, default=0)
    add_json_arg(p)
    p.set_defaults(func=cmd_trace_stats)

    p = sub.add_parser("replay", help="Fig. 14-style trace replay")
    p.add_argument("--jobs", type=int, default=40)
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--penalty", type=float, default=0.5)
    p.add_argument("--parallel", type=int, default=1, metavar="N",
                   help="replay worker processes (results identical "
                        "for any N; --emit-trace forces serial)")
    p.add_argument("--no-incremental", action="store_true",
                   help="bisection switch: full fair-share re-solve on "
                        "every event (results identical, slower)")
    p.add_argument("--no-memo", action="store_true",
                   help="bisection switch: disable Algorithm 1 "
                        "memoization and bound pruning (results "
                        "identical, slower)")
    p.add_argument("--no-vector", action="store_true",
                   help="bisection switch: scalar object engine instead "
                        "of the vectorized event core (results "
                        "identical, slower)")
    add_faults_args(p)
    add_json_arg(p)
    add_trace_args(p)
    add_progress_arg(p)
    add_serve_args(p)
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "serve",
        help="run the streaming scheduler daemon (online DelayStage over "
             "open-loop arrivals, with HTTP submit/status/cancel/drain)",
    )
    p.add_argument("--bind", metavar="[HOST:]PORT", default="127.0.0.1:0",
                   help="bind the control + telemetry server here "
                        "(default: loopback, ephemeral port echoed on "
                        "stderr)")
    p.add_argument("--jobs", type=int, default=0, metavar="N",
                   help="sample N open-loop arrivals from the trace twin "
                        "(default 0: jobs arrive only via POST "
                        "/service/submit)")
    p.add_argument("--rate", type=float, default=0.05, metavar="JOBS_PER_S",
                   help="Poisson arrival rate for --jobs, in service "
                        "seconds (crank past the service rate to reach "
                        "overload)")
    p.add_argument("--seed", type=int, default=0,
                   help="trace twin + arrival sampling seed")
    p.add_argument("--slots", type=int, default=2,
                   help="concurrent dispatch slots")
    p.add_argument("--max-pending", type=int, default=64, dest="max_pending",
                   metavar="N",
                   help="bounded pending queue; submissions beyond it are "
                        "shed with a typed queue_full rejection (HTTP 429)")
    p.add_argument("--max-stages", type=int, default=None, dest="max_stages",
                   metavar="N",
                   help="reject DAGs with more stages than this (413)")
    p.add_argument("--strategy", choices=["delaystage", "fuxi"],
                   default="delaystage",
                   help="online scheduling strategy (default delaystage)")
    p.add_argument("--time-scale", type=float, default=1.0,
                   dest="time_scale", metavar="X",
                   help="service seconds per wall second (600 compresses "
                        "ten simulated minutes into each real second)")
    p.add_argument("--drain-after", type=float, default=None,
                   dest="drain_after", metavar="T",
                   help="auto-drain once service time passes T and the "
                        "arrival schedule is exhausted (default with "
                        "--jobs: right after the last sampled arrival)")
    p.add_argument("--snapshot", metavar="PATH",
                   help="write the drain snapshot (service stats + every "
                        "retained job record) here as JSON")
    p.add_argument("--serve-grace", type=float, default=0.0,
                   dest="serve_grace", metavar="SECONDS",
                   help="keep the telemetry server up this long after the "
                        "drain completes")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the drain snapshot on stdout")
    add_faults_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "tail", help="pretty-print a live server's /events stream"
    )
    p.add_argument("url", help="server URL (HOST:PORT, or a full "
                               "http://HOST:PORT/events URL)")
    p.add_argument("--max", type=int, default=None, metavar="N",
                   help="stop after N events (default: until the server "
                        "closes the stream)")
    p.add_argument("--raw", action="store_true",
                   help="print the JSON lines untouched (for jq)")
    p.add_argument("--timeout", type=float, default=10.0, metavar="SECONDS",
                   help="connect/read timeout")
    p.add_argument("--reconnect", type=int, default=0, metavar="N",
                   help="survive dropped streams: retry up to N "
                        "consecutive times with capped backoff, resuming "
                        "at the last seen event (no duplicates)")
    p.set_defaults(func=cmd_tail)

    p = sub.add_parser(
        "inspect", help="summarize / validate a trace written with --emit-trace"
    )
    p.add_argument("trace", help="Chrome trace JSON file to inspect")
    p.add_argument("--validate", action="store_true",
                   help="exit 1 if the trace fails schema validation")
    p.add_argument("--max-stages", type=int, default=50, dest="max_stages",
                   help="root spans to show in the tree summary")
    p.add_argument("--counters", action="store_true",
                   help="per-track min/mean/max/last summary of the "
                        "counter samples")
    add_json_arg(p)
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser(
        "bench", help="performance benchmarks with equivalence checks"
    )
    p.add_argument("--bench", action="append", dest="benchmarks",
                   metavar="NAME", choices=["realloc", "alg1", "replay"],
                   help="benchmark to run (repeatable; default: all)")
    p.add_argument("--quick", action="store_true",
                   help="smaller inputs / fewer repeats (CI mode)")
    p.add_argument("--out", default="benchmarks/perf", metavar="DIR",
                   help="directory for BENCH_<name>.json "
                        "(empty string: don't write)")
    p.add_argument("--compare", metavar="DIR",
                   help="watchdog: diff fresh results against the "
                        "BENCH_*.json baselines in DIR; exit 1 on a "
                        "wall-time regression past the threshold or an "
                        "equivalence break")
    p.add_argument("--threshold", type=float, default=1.5,
                   help="watchdog wall-time regression factor "
                        "(default: 1.5x; only applied to baselines "
                        "with comparable inputs)")
    p.add_argument("--no-vector", action="store_true",
                   help="run the optimized arms on the scalar object "
                        "engine (--no-vector mode); the escape-hatch "
                        "baseline arm is unchanged")
    p.add_argument("--profile", action="store_true",
                   help="run each bench under cProfile and write "
                        "PROFILE_<name>.txt hotspot tables to --out "
                        "instead of BENCH json (profiled wall times "
                        "are distorted and never archived)")
    add_json_arg(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "verify", help="validate workload DAGs, schedules, and clusters"
    )
    p.add_argument("--workload", action="append", choices=VERIFY_CHOICES,
                   dest="workloads", metavar="NAME",
                   help="workload to verify (repeatable; default: all)")
    p.add_argument("--workers", type=int, default=30, help="EC2 worker count")
    p.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")
    p.add_argument("--schedule", action="store_true",
                   help="also run Algorithm 1 and validate its schedule")
    p.add_argument("--max-slots", type=int, default=48, dest="max_slots")
    p.add_argument("--delays",
                   help="metrics.properties file to validate against the DAGs")
    p.add_argument("--flow", action="store_true",
                   help="run the whole-program determinism & concurrency "
                        "analyzer over the repro package instead of the "
                        "workload validators; exit 1 iff unsuppressed "
                        "findings (see docs/verification.md)")
    p.add_argument("--flow-root", metavar="DIR", dest="flow_root",
                   help="analyze this directory instead of the installed "
                        "repro package (with --flow)")
    p.add_argument("--flow-baseline", metavar="PATH", dest="flow_baseline",
                   help="baseline suppression file (default: the committed "
                        "tools/flow_baseline.json when present)")
    p.add_argument("--flow-cache", metavar="DIR", dest="flow_cache",
                   help="cache extracted module summaries here, keyed by "
                        "file content hash (used by CI)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit a machine-readable report")
    p.set_defaults(func=cmd_verify)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
