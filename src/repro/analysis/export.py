"""CSV export of simulation results.

The benchmark harness renders text; external plotting pipelines
(matplotlib, gnuplot, spreadsheets) want CSV.  Two exporters cover the
two result shapes: per-stage lifecycle rows and per-node utilization
time series.
"""

from __future__ import annotations

import csv
import io
import pathlib

import numpy as np

from repro.simulator.simulation import SimulationResult


def export_stage_records_csv(
    result: SimulationResult,
    destination: "str | pathlib.Path | io.TextIOBase",
) -> int:
    """Write one row per stage: lifecycle instants and phase durations.

    Columns: ``job_id, stage_id, ready, submit, delay, read_done,
    compute_done, finish, read_time, compute_time, write_time,
    duration``.  Returns the row count.
    """
    if isinstance(destination, (str, pathlib.Path)):
        with open(destination, "w", encoding="utf-8", newline="") as fh:
            return export_stage_records_csv(result, fh)

    writer = csv.writer(destination)
    writer.writerow([
        "job_id", "stage_id", "ready", "submit", "delay", "read_done",
        "compute_done", "finish", "read_time", "compute_time",
        "write_time", "duration",
    ])
    rows = 0
    for (job_id, stage_id), rec in sorted(result.stage_records.items()):
        writer.writerow([
            job_id, stage_id,
            f"{rec.ready_time:.6f}", f"{rec.submit_time:.6f}",
            f"{rec.delay:.6f}", f"{rec.read_done_time:.6f}",
            f"{rec.compute_done_time:.6f}", f"{rec.finish_time:.6f}",
            f"{rec.read_time:.6f}", f"{rec.compute_time:.6f}",
            f"{rec.write_time:.6f}", f"{rec.duration:.6f}",
        ])
        rows += 1
    return rows


def export_utilization_csv(
    result: SimulationResult,
    destination: "str | pathlib.Path | io.TextIOBase",
    step: float = 1.0,
    nodes: "list[str] | None" = None,
) -> int:
    """Write sampled per-node utilization series.

    Columns: ``time, node, cpu_busy, cpu_utilization, net_in_bytes,
    net_out_bytes, disk_bytes``; one row per (sample time, node).
    Requires the run to have tracked metrics.
    """
    if result.metrics is None:
        raise ValueError("run had metrics tracking disabled")
    if isinstance(destination, (str, pathlib.Path)):
        with open(destination, "w", encoding="utf-8", newline="") as fh:
            return export_utilization_csv(result, fh, step=step, nodes=nodes)
    if step <= 0:
        raise ValueError("step must be > 0")

    node_ids = nodes or result.cluster.worker_ids
    times = np.arange(0.0, result.makespan + step, step)
    writer = csv.writer(destination)
    writer.writerow([
        "time", "node", "cpu_busy", "cpu_utilization",
        "net_in_bytes", "net_out_bytes", "disk_bytes",
    ])
    rows = 0
    for node in node_ids:
        series = result.metrics.node_series(node)
        cpu = series.sample(times, "cpu_busy")
        cpu_util = series.sample(times, "cpu_utilization")
        net_in = series.sample(times, "net_in")
        net_out = series.sample(times, "net_out")
        disk = series.sample(times, "disk")
        for i, t in enumerate(times):
            writer.writerow([
                f"{t:.3f}", node, f"{cpu[i]:.4f}", f"{cpu_util[i]:.4f}",
                f"{net_in[i]:.1f}", f"{net_out[i]:.1f}", f"{disk[i]:.1f}",
            ])
            rows += 1
    return rows
