"""Side-by-side comparison of two simulation results.

Useful when eyeballing what a schedule change did: per-stage deltas of
submission, phases, and finish, plus the JCT movement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.simulation import SimulationResult


@dataclass(frozen=True)
class StageDelta:
    """Per-stage difference B minus A (negative = B earlier/faster)."""

    stage_id: str
    submit: float
    read_time: float
    compute_time: float
    finish: float


@dataclass(frozen=True)
class ResultComparison:
    """Stage-level deltas between two runs of the same job."""

    job_id: str
    jct_a: float
    jct_b: float
    stages: tuple[StageDelta, ...]

    @property
    def jct_delta(self) -> float:
        return self.jct_b - self.jct_a

    @property
    def improvement(self) -> float:
        """Fractional JCT reduction of B relative to A."""
        return 1.0 - self.jct_b / self.jct_a if self.jct_a > 0 else 0.0

    def most_shifted(self, n: int = 3) -> list[StageDelta]:
        """Stages whose submission moved the most (the delayed ones)."""
        return sorted(self.stages, key=lambda d: -abs(d.submit))[:n]


def compare_results(
    a: SimulationResult, b: SimulationResult, job_id: "str | None" = None
) -> ResultComparison:
    """Diff two results of the same job (e.g. stock vs DelayStage)."""
    if job_id is None:
        ids_a = set(a.job_records)
        ids_b = set(b.job_records)
        common = ids_a & ids_b
        if len(common) != 1:
            raise ValueError(
                f"pass job_id explicitly; runs share {sorted(common)}"
            )
        (job_id,) = common
    if job_id not in a.job_records or job_id not in b.job_records:
        raise KeyError(f"job {job_id!r} missing from one of the results")

    stage_ids = sorted(
        sid for (jid, sid) in a.stage_records if jid == job_id
    )
    deltas = []
    for sid in stage_ids:
        ra = a.stage(job_id, sid)
        rb = b.stage(job_id, sid)
        deltas.append(
            StageDelta(
                stage_id=sid,
                submit=rb.submit_time - ra.submit_time,
                read_time=rb.read_time - ra.read_time,
                compute_time=rb.compute_time - ra.compute_time,
                finish=rb.finish_time - ra.finish_time,
            )
        )
    return ResultComparison(
        job_id=job_id,
        jct_a=a.job_completion_time(job_id),
        jct_b=b.job_completion_time(job_id),
        stages=tuple(deltas),
    )
