"""Summary statistics for scheduler comparisons (Tables 3–4)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.simulation import SimulationResult
from repro.util.units import mb_per_sec


def improvement(baseline: float, improved: float) -> float:
    """Fractional reduction of ``improved`` relative to ``baseline``.

    Positive = better (smaller).  The quantity behind every
    "reduces JCT by X %" claim.
    """
    if baseline <= 0:
        raise ValueError(f"baseline must be > 0, got {baseline}")
    return 1.0 - improved / baseline


@dataclass(frozen=True)
class UtilizationSummary:
    """Average (std) of a worker's network throughput and CPU
    utilization over a window — one cell pair of Table 3."""

    net_mb_mean: float
    net_mb_std: float
    cpu_pct_mean: float
    cpu_pct_std: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"net {self.net_mb_mean:.1f} ({self.net_mb_std:.1f}) MB/s, "
            f"cpu {self.cpu_pct_mean:.1f} ({self.cpu_pct_std:.1f}) %"
        )


def utilization_summary(
    result: SimulationResult,
    node_id: "str | None" = None,
    t_lo: float = 0.0,
    t_hi: "float | None" = None,
) -> UtilizationSummary:
    """Table 3 row: a worker node's utilization during the job.

    Uses the first worker unless ``node_id`` is given; the window
    defaults to the full run (job start to last completion).
    """
    if result.metrics is None:
        raise ValueError("run had metrics tracking disabled")
    node = node_id or result.cluster.worker_ids[0]
    hi = t_hi if t_hi is not None else result.makespan
    series = result.metrics.node_series(node)
    return UtilizationSummary(
        net_mb_mean=mb_per_sec(series.average("net_in", t_lo, hi)),
        net_mb_std=mb_per_sec(series.std("net_in", t_lo, hi)),
        cpu_pct_mean=series.average("cpu_utilization", t_lo, hi) * 100.0,
        cpu_pct_std=series.std("cpu_utilization", t_lo, hi) * 100.0,
    )
