"""Result post-processing: CDFs, stage timelines, summary statistics,
and paper-style text rendering used by the benchmark harness."""

from repro.analysis.cdf import empirical_cdf, cdf_at, percentile
from repro.analysis.compare import ResultComparison, StageDelta, compare_results
from repro.analysis.export import export_stage_records_csv, export_utilization_csv
from repro.analysis.stats import (
    improvement,
    utilization_summary,
    UtilizationSummary,
)
from repro.analysis.timeline import (
    GanttRow,
    stage_gantt,
    utilization_series,
)
from repro.analysis.report import (
    render_blame_bars,
    render_cdf,
    render_gantt,
    render_series,
    render_table,
)

__all__ = [
    "empirical_cdf",
    "cdf_at",
    "percentile",
    "improvement",
    "UtilizationSummary",
    "utilization_summary",
    "GanttRow",
    "stage_gantt",
    "utilization_series",
    "render_table",
    "render_series",
    "render_cdf",
    "render_gantt",
    "render_blame_bars",
    "compare_results",
    "ResultComparison",
    "StageDelta",
    "export_stage_records_csv",
    "export_utilization_csv",
]
