"""Stage gantt and utilization time-series extraction.

Backs the paper's stage-breakdown figures (6, 11, 16) and worker
utilization figures (5, 12, 17).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulator.simulation import SimulationResult


@dataclass(frozen=True)
class GanttRow:
    """One stage's timeline: the gray (shuffle read) and white
    (processing + shuffle write) blocks of the paper's Fig. 6."""

    stage_id: str
    ready: float
    submit: float
    read_done: float
    finish: float

    @property
    def delay(self) -> float:
        return self.submit - self.ready

    @property
    def read_span(self) -> tuple[float, float]:
        return (self.submit, self.read_done)

    @property
    def process_span(self) -> tuple[float, float]:
        return (self.read_done, self.finish)

    @property
    def duration(self) -> float:
        return self.finish - self.submit


def stage_gantt(result: SimulationResult, job_id: str) -> list[GanttRow]:
    """Per-stage timeline rows, ordered by submission time."""
    rows = [
        GanttRow(
            stage_id=sid,
            ready=rec.ready_time,
            submit=rec.submit_time,
            read_done=rec.read_done_time,
            finish=rec.finish_time,
        )
        for (jid, sid), rec in result.stage_records.items()
        if jid == job_id
    ]
    rows.sort(key=lambda r: (r.submit, r.stage_id))
    return rows


def utilization_series(
    result: SimulationResult,
    node_id: "str | None" = None,
    step: float = 1.0,
    metric_net: str = "net_in",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sampled (time, cpu_percent, net_bytes_per_sec) series for one
    worker — the Fig. 5/12/17 time series.

    Sampling goes through
    :meth:`~repro.simulator.metrics.MetricsCollector.sample_nodes`, the
    single-pass path over the collector's shared segment grid (one
    ``searchsorted`` for both metrics instead of a per-node, per-metric
    re-resample); values are bit-identical to the previous
    ``NodeSeries.sample`` implementation.
    """
    if result.metrics is None:
        raise ValueError("run had metrics tracking disabled")
    node = node_id or result.cluster.worker_ids[0]
    t = np.arange(0.0, result.makespan + step, step)
    sampled = result.metrics.sample_nodes(
        t, ["cpu_utilization", metric_net], nodes=[node]
    )
    cpu = sampled["cpu_utilization"][0] * 100.0
    net = sampled[metric_net][0]
    return t, cpu, net
