"""Empirical CDF utilities for the paper's CDF figures (2, 3, 14)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Anything ``np.asarray`` accepts as a 1-D float sample.
ArrayLike = "Sequence[float] | np.ndarray"


def empirical_cdf(values: ArrayLike) -> tuple[np.ndarray, np.ndarray]:
    """Sorted values and cumulative probabilities in percent.

    Returns ``(x, p)`` with ``p[i]`` the fraction (0–100 %) of samples
    ``<= x[i]`` — the coordinates the paper's CDF plots use.
    """
    x = np.sort(np.asarray(values, dtype=float))
    if x.size == 0:
        return x, np.zeros(0)
    p = np.arange(1, x.size + 1) / x.size * 100.0
    return x, p


def cdf_at(values: ArrayLike, threshold: float) -> float:
    """Fraction of samples <= threshold, in [0, 1]."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        return 0.0
    return float(np.mean(v <= threshold))


def percentile(values: ArrayLike, q: float) -> float:
    """q-th percentile (0-100) of the samples."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("percentile of empty sample")
    return float(np.percentile(v, q))
