"""Plain-text rendering of tables, series, and CDFs.

The benchmark harness prints each reproduced table/figure in a textual
form that mirrors what the paper plots, so a terminal run of
``pytest benchmarks/`` shows the same rows and series the paper
reports.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.timeline import GanttRow


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table with a separator under the header."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x: Sequence[float],
    ys: "dict[str, Sequence[float]]",
    title: str = "",
    x_label: str = "t",
    max_points: int = 24,
) -> str:
    """Downsampled multi-series table (one row per x sample)."""
    x = np.asarray(x, dtype=float)
    idx = np.linspace(0, len(x) - 1, min(max_points, len(x))).astype(int)
    headers = [x_label] + list(ys)
    rows = []
    for i in idx:
        rows.append([f"{x[i]:.0f}"] + [f"{np.asarray(v)[i]:.1f}" for v in ys.values()])
    return render_table(headers, rows, title)


def render_cdf(
    samples: "dict[str, Sequence[float]]",
    title: str = "",
    percentiles: Sequence[float] = (10, 25, 50, 75, 90, 99),
) -> str:
    """CDF summary: one row per percentile, one column per series."""
    headers = ["pctile"] + list(samples)
    rows = []
    for q in percentiles:
        rows.append(
            [f"p{q:g}"]
            + [f"{np.percentile(np.asarray(v, dtype=float), q):.1f}" for v in samples.values()]
        )
    return render_table(headers, rows, title)


def render_gantt(
    rows: "Sequence[GanttRow]",
    title: str = "",
    width: int = 72,
) -> str:
    """ASCII stage gantt in the paper's Fig. 6 style.

    ``rows`` are :class:`repro.analysis.timeline.GanttRow` objects;
    shuffle read renders as ``▒`` (the paper's gray block) and
    processing + shuffle write as ``█`` (the white block).
    """
    rows = list(rows)
    if not rows:
        return title
    t_max = max(r.finish for r in rows)
    scale = width / t_max if t_max > 0 else 1.0
    lines = [title] if title else []
    for r in rows:
        pre = " " * int(r.submit * scale)
        read = "▒" * max(int((r.read_done - r.submit) * scale), 1)
        proc = "█" * max(int((r.finish - r.read_done) * scale), 1)
        delay = f" (+{r.delay:.0f}s delay)" if r.delay > 0.5 else ""
        lines.append(
            f"  {r.stage_id:>4s} |{pre}{read}{proc}  "
            f"[{r.submit:6.1f} → {r.finish:6.1f}]{delay}"
        )
    return "\n".join(lines)


def render_blame_bars(
    categories: "dict[str, float]",
    total: float,
    title: str = "",
    width: int = 48,
) -> str:
    """ASCII share bars for a blame decomposition (``repro why``).

    One row per category with its seconds, share of ``total``, and a
    proportional ``█`` bar — the terminal twin of the paper's Fig. 4
    utilization bands, but along the critical path instead of the
    cluster timeline.
    """
    lines = [title] if title else []
    name_w = max((len(c) for c in categories), default=0)
    for cat, seconds in categories.items():
        share = seconds / total if total > 0 else 0.0
        bar = "█" * max(int(round(share * width)), 1 if seconds > 0 else 0)
        lines.append(
            f"  {cat.ljust(name_w)}  {seconds:8.1f} s  {share:6.1%}  {bar}"
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)
