"""Candidate-schedule evaluation under stage interference.

Sec. 3.2 of the paper shows the number of concurrently executing
stages ``f_w_tau(X)`` — and with it the per-stage resource shares —
has no tractable closed form, so the prototype's delay-time calculator
*predicts* stage times numerically from profiled parameters.  This
module is that predictor: it runs the deterministic fluid model
(metrics off, single job) for a candidate delay vector ``X`` and
reports the quantities Algorithm 1 needs — per-stage times, path
completion times, and the parallel-stage makespan.

The model job is typically built from *profiled* (noisy) parameters,
so predictions differ from the ground-truth simulation the way the
paper's model differs from the real cluster (Appendix A.2 quantifies
the resulting 1.6 %–9.1 % error).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.cluster.spec import ClusterSpec
from repro.dag.graph import parallel_stage_set
from repro.dag.job import Job
from repro.simulator.simulation import (
    FixedDelayPolicy,
    Simulation,
    SimulationConfig,
    SimulationResult,
)


@dataclass(frozen=True)
class ScheduleEvaluation:
    """Model prediction for one candidate delay schedule."""

    delays: dict[str, float]
    stage_times: dict[str, float]
    stage_finish: dict[str, float]
    job_completion_time: float
    parallel_makespan: float

    def stage_time(self, stage_id: str) -> float:
        return self.stage_times[stage_id]


class EvaluationCache:
    """Memo for candidate-schedule fluid evaluations.

    Algorithm 1 re-evaluates the same (phantom set, delay table) pair
    more than once — most prominently the final full-schedule
    evaluation, which the last stage's scan already computed as its
    winning candidate, and every trial of the refinement passes that
    re-visits the incumbent's neighborhood.  The evaluation is a pure
    function of the phantom set and the delay table (job, cluster, and
    config are fixed for one planning run), so a dict keyed on
    :meth:`key` is exact — a hit returns the *identical*
    :class:`ScheduleEvaluation` object, not an approximation.

    One cache per planning run; do not share across jobs or configs.
    """

    __slots__ = ("_store", "hits", "misses")

    def __init__(self) -> None:
        self._store: dict = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(
        hidden: "Iterable[str]", delays: "Mapping[str, float]"
    ) -> tuple:
        """Cache key: the phantom (hidden) stage set plus the delay
        table in canonical (sorted) order — the schedule-prefix hash."""
        return (frozenset(hidden), tuple(sorted(delays.items())))

    def get(self, key: tuple) -> "ScheduleEvaluation | None":
        ev = self._store.get(key)
        if ev is not None:
            self.hits += 1
        return ev

    def put(self, key: tuple, ev: ScheduleEvaluation) -> None:
        self.misses += 1
        self._store[key] = ev

    def __len__(self) -> int:
        return len(self._store)


def evaluate_schedule(
    job: Job,
    cluster: ClusterSpec,
    delays: "Mapping[str, float] | None" = None,
    *,
    members: "frozenset[str] | None" = None,
    config: "SimulationConfig | None" = None,
    pair_capacities: "dict[tuple[str, str], float] | None" = None,
) -> ScheduleEvaluation:
    """Predict stage timings for the given per-stage submission delays.

    Parameters
    ----------
    job:
        The (model) job; use profiled parameters for realism.
    cluster:
        The (measured) cluster spec.
    delays:
        Extra delay per stage after it becomes ready.  Missing stages
        submit immediately.
    members:
        The parallel-stage set ``K``; computed if omitted (pass it when
        calling in a loop — Algorithm 1 evaluates hundreds of
        candidates).
    config:
        Simulation behaviour override; defaults to metrics-off for
        speed.
    pair_capacities:
        Optional per-pair link caps (the geo/WAN extension), applied to
        the model's topology exactly as the executor applies them.
    """
    delays = dict(delays or {})
    cfg = config or SimulationConfig(track_metrics=False, track_events=False)
    sim = Simulation(cluster, cfg, pair_capacities=pair_capacities)
    sim.add_job(job, FixedDelayPolicy(delays))
    result: SimulationResult = sim.run()

    stage_times = {}
    stage_finish = {}
    for (jid, sid), rec in result.stage_records.items():
        stage_times[sid] = rec.duration
        stage_finish[sid] = rec.finish_time

    k = members if members is not None else parallel_stage_set(job)
    parallel_makespan = max((stage_finish[sid] for sid in k), default=0.0)

    return ScheduleEvaluation(
        delays=delays,
        stage_times=stage_times,
        stage_finish=stage_finish,
        job_completion_time=result.job_completion_time(job.job_id),
        parallel_makespan=parallel_makespan,
    )


def probe_schedule(
    job: Job,
    cluster: ClusterSpec,
    delays: "Mapping[str, float]",
    *,
    horizon: float = math.inf,
    watch: "Iterable[str] | None" = None,
    config: "SimulationConfig | None" = None,
    pair_capacities: "dict[tuple[str, str], float] | None" = None,
) -> dict[str, float]:
    """Truncated candidate evaluation: finish times up to a stop point.

    Runs the same fluid model as :func:`evaluate_schedule` but stops the
    clock at ``horizon`` or as soon as every stage in ``watch`` has
    finished, returning finish times only for stages that completed by
    then — exact values, since the trajectory up to the stop point is
    identical to the full run's prefix.  A stage missing from the
    returned map finishes *strictly after* the horizon.

    Algorithm 1 uses this with ``watch = the visible stages`` and
    ``horizon = incumbent makespan``: if any watched stage is missing,
    the candidate provably cannot beat the incumbent; either way the
    (often long) model tail is never simulated.
    """
    cfg = config or SimulationConfig(track_metrics=False, track_events=False)
    sim = Simulation(cluster, cfg, pair_capacities=pair_capacities)
    sim.add_job(job, FixedDelayPolicy(dict(delays)))
    records = sim.run_truncated(horizon, watch=set(watch) if watch else None)
    return {
        sid: rec.finish_time
        for (_jid, sid), rec in records.items()
        if not math.isnan(rec.finish_time)
    }
