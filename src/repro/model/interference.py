"""Candidate-schedule evaluation under stage interference.

Sec. 3.2 of the paper shows the number of concurrently executing
stages ``f_w_tau(X)`` — and with it the per-stage resource shares —
has no tractable closed form, so the prototype's delay-time calculator
*predicts* stage times numerically from profiled parameters.  This
module is that predictor: it runs the deterministic fluid model
(metrics off, single job) for a candidate delay vector ``X`` and
reports the quantities Algorithm 1 needs — per-stage times, path
completion times, and the parallel-stage makespan.

The model job is typically built from *profiled* (noisy) parameters,
so predictions differ from the ground-truth simulation the way the
paper's model differs from the real cluster (Appendix A.2 quantifies
the resulting 1.6 %–9.1 % error).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cluster.spec import ClusterSpec
from repro.dag.graph import parallel_stage_set
from repro.dag.job import Job
from repro.simulator.simulation import (
    FixedDelayPolicy,
    Simulation,
    SimulationConfig,
    SimulationResult,
)


@dataclass(frozen=True)
class ScheduleEvaluation:
    """Model prediction for one candidate delay schedule."""

    delays: dict[str, float]
    stage_times: dict[str, float]
    stage_finish: dict[str, float]
    job_completion_time: float
    parallel_makespan: float

    def stage_time(self, stage_id: str) -> float:
        return self.stage_times[stage_id]


def evaluate_schedule(
    job: Job,
    cluster: ClusterSpec,
    delays: "Mapping[str, float] | None" = None,
    *,
    members: "frozenset[str] | None" = None,
    config: "SimulationConfig | None" = None,
    pair_capacities: "dict[tuple[str, str], float] | None" = None,
) -> ScheduleEvaluation:
    """Predict stage timings for the given per-stage submission delays.

    Parameters
    ----------
    job:
        The (model) job; use profiled parameters for realism.
    cluster:
        The (measured) cluster spec.
    delays:
        Extra delay per stage after it becomes ready.  Missing stages
        submit immediately.
    members:
        The parallel-stage set ``K``; computed if omitted (pass it when
        calling in a loop — Algorithm 1 evaluates hundreds of
        candidates).
    config:
        Simulation behaviour override; defaults to metrics-off for
        speed.
    pair_capacities:
        Optional per-pair link caps (the geo/WAN extension), applied to
        the model's topology exactly as the executor applies them.
    """
    delays = dict(delays or {})
    cfg = config or SimulationConfig(track_metrics=False)
    sim = Simulation(cluster, cfg, pair_capacities=pair_capacities)
    sim.add_job(job, FixedDelayPolicy(delays))
    result: SimulationResult = sim.run()

    stage_times = {}
    stage_finish = {}
    for (jid, sid), rec in result.stage_records.items():
        stage_times[sid] = rec.duration
        stage_finish[sid] = rec.finish_time

    k = members if members is not None else parallel_stage_set(job)
    parallel_makespan = max((stage_finish[sid] for sid in k), default=0.0)

    return ScheduleEvaluation(
        delays=delays,
        stage_times=stage_times,
        stage_finish=stage_finish,
        job_completion_time=result.job_completion_time(job.job_id),
        parallel_makespan=parallel_makespan,
    )
