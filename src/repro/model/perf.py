"""Closed-form evaluation of Eq. (1)/(2) for an isolated stage.

With the stage running alone, the time-varying resource shares of
Sec. 3.2 collapse to constants, so the three terms of Eq. (1) —
network transfer, processing, shuffle write — can be evaluated
directly.  These standalone times ``t̂_k`` seed Algorithm 1 (line 2)
and order the execution paths (line 4).

The formulas mirror the simulator's fluid semantics exactly (including
the co-located-read bypass), which the test suite asserts: for a
single stage the simulator and this module agree to float precision.
"""

from __future__ import annotations

from repro.cluster.spec import ClusterSpec
from repro.dag.job import Job
from repro.dag.stage import Stage


def _sources_for(job: Job, stage_id: str, cluster: ClusterSpec) -> list[str]:
    """Which nodes hold the stage's input (mirrors the simulator)."""
    if job.parents(stage_id):
        return cluster.worker_ids
    return cluster.storage_ids if cluster.storage_ids else cluster.worker_ids


def standalone_read_time(stage: Stage, cluster: ClusterSpec, sources: list[str]) -> float:
    """Shuffle-read time of the slowest worker, stage running alone.

    Each worker reads ``s_k / |W|`` split evenly over the sources; the
    co-located slice (when the worker is itself a source) is local and
    free.  Per-flow bandwidth is the max-min share of the endpoint NICs:
    a source fans out to every remote worker, a worker fans in from
    every remote source.
    """
    workers = cluster.worker_ids
    n_w = len(workers)
    per_worker = stage.input_bytes / n_w
    if per_worker == 0 or not sources:
        return 0.0

    worst = 0.0
    for w in workers:
        remote_sources = [s for s in sources if s != w]
        if not remote_sources:
            continue  # single-worker cluster reading its own data
        per_source = (per_worker / len(sources)) if w in sources else (
            per_worker / len(remote_sources)
        )
        # Eq. (1) first term: the slowest source-to-worker transfer.
        t_read = 0.0
        ingress_share = cluster.node(w).nic_bandwidth / len(remote_sources)
        for src in remote_sources:
            dst_count = n_w - 1 if src in workers else n_w
            egress_share = cluster.node(src).nic_bandwidth / dst_count
            bandwidth = min(egress_share, ingress_share)
            t_read = max(t_read, per_source / bandwidth)
        worst = max(worst, t_read)
    return worst


def standalone_task_time(
    stage: Stage, cluster: ClusterSpec, sources: list[str], worker_id: str
) -> float:
    """Eq. (1): the full task time on one worker, stage running alone."""
    workers = cluster.worker_ids
    n_w = len(workers)
    node = cluster.node(worker_id)

    per_worker = stage.input_bytes / n_w
    t_read = 0.0
    remote_sources = [s for s in sources if s != worker_id]
    if per_worker > 0 and remote_sources:
        per_source = (per_worker / len(sources)) if worker_id in sources else (
            per_worker / len(remote_sources)
        )
        ingress_share = node.nic_bandwidth / len(remote_sources)
        for src in remote_sources:
            dst_count = n_w - 1 if src in workers else n_w
            egress_share = cluster.node(src).nic_bandwidth / dst_count
            t_read = max(t_read, per_source / min(egress_share, ingress_share))

    t_compute = per_worker / (node.executors * stage.process_rate)
    t_write = (stage.output_bytes / n_w) / node.disk_bandwidth
    return t_read + t_compute + t_write


def standalone_stage_time(job: Job, stage_id: str, cluster: ClusterSpec) -> float:
    """Eq. (2): stage time = the slowest worker's task time, alone."""
    stage = job.stage(stage_id)
    sources = _sources_for(job, stage_id, cluster)
    return max(
        standalone_task_time(stage, cluster, sources, w) for w in cluster.worker_ids
    )


def standalone_stage_times(job: Job, cluster: ClusterSpec) -> dict[str, float]:
    """``t̂_k`` for every stage of the job (Alg. 1 line 2)."""
    return {sid: standalone_stage_time(job, sid, cluster) for sid in job.stage_ids}
