"""Analytical performance model of parallel-stage execution (paper Sec. 3).

:mod:`repro.model.perf` evaluates Eqs. (1)–(3) in closed form for a
stage running *alone* in the cluster — the initialization step of
Algorithm 1 (line 2).  :mod:`repro.model.interference` evaluates a full
candidate delay schedule ``X`` under stage interference by running the
deterministic fluid model (the quantity the paper calls ``f_w_tau(X)``
is intractable in closed form — Sec. 3.2 — so the calculator predicts
it numerically, exactly as the paper's prototype does with profiled
parameters).  :mod:`repro.model.makespan` extracts path execution times
and the parallel-stage makespan from either source.
"""

from repro.model.perf import (
    standalone_read_time,
    standalone_stage_time,
    standalone_stage_times,
    standalone_task_time,
)
from repro.model.interference import ScheduleEvaluation, evaluate_schedule
from repro.model.makespan import (
    parallel_stage_makespan,
    path_completion_times,
    predicted_path_time,
)

__all__ = [
    "standalone_task_time",
    "standalone_read_time",
    "standalone_stage_time",
    "standalone_stage_times",
    "evaluate_schedule",
    "ScheduleEvaluation",
    "path_completion_times",
    "parallel_stage_makespan",
    "predicted_path_time",
]
