"""Path-time and makespan extraction (Eqs. (3)–(4)).

These helpers convert per-stage timing — predicted by
:mod:`repro.model.interference` or observed by the simulator — into
the objective DelayStage minimizes: the makespan of the parallel-stage
set, i.e. the completion time of the slowest execution path.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.dag.paths import ExecutionPath


def predicted_path_time(
    path: ExecutionPath,
    delays: Mapping[str, float],
    stage_times: Mapping[str, float],
) -> float:
    """Eq. (3): ``T_m = sum_{k in P_m} (x_k + t_k)``.

    This closed form assumes the path's stages run back to back (each
    stage becomes ready exactly when its path predecessor completes);
    cross-path parents can push a stage's actual start later, which the
    fluid evaluation captures and this expression underestimates.
    """
    return sum(delays.get(sid, 0.0) + stage_times[sid] for sid in path)


def path_completion_times(
    paths: Sequence[ExecutionPath],
    stage_finish: Mapping[str, float],
) -> list[float]:
    """Observed completion time of each path (its last stage's finish)."""
    return [max(stage_finish[sid] for sid in path) for path in paths]


def parallel_stage_makespan(
    paths: Sequence[ExecutionPath],
    stage_finish: Mapping[str, float],
    job_start: float = 0.0,
) -> float:
    """Objective (4): latest path completion, measured from job start."""
    if not paths:
        return 0.0
    return max(path_completion_times(paths, stage_finish)) - job_start
