"""Reproducible performance benchmarks (``repro bench``).

See :mod:`repro.bench.harness` for the benchmark definitions and the
measurement methodology.
"""

from repro.bench.harness import (
    BENCHMARKS,
    BenchResult,
    bench_alg1,
    bench_realloc,
    bench_replay,
    profile_benchmarks,
    run_benchmarks,
    write_profiles,
    write_results,
)
from repro.bench.watch import (
    DEFAULT_WALL_THRESHOLD,
    WatchFinding,
    comparable_configs,
    compare_to_baselines,
    has_failures,
    load_baselines,
    render_findings,
)

__all__ = [
    "BENCHMARKS",
    "BenchResult",
    "DEFAULT_WALL_THRESHOLD",
    "WatchFinding",
    "bench_alg1",
    "bench_realloc",
    "bench_replay",
    "comparable_configs",
    "compare_to_baselines",
    "has_failures",
    "load_baselines",
    "profile_benchmarks",
    "render_findings",
    "run_benchmarks",
    "write_profiles",
    "write_results",
]
