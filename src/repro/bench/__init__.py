"""Reproducible performance benchmarks (``repro bench``).

See :mod:`repro.bench.harness` for the benchmark definitions and the
measurement methodology.
"""

from repro.bench.harness import (
    BENCHMARKS,
    BenchResult,
    bench_alg1,
    bench_realloc,
    bench_replay,
    run_benchmarks,
    write_results,
)

__all__ = [
    "BENCHMARKS",
    "BenchResult",
    "bench_alg1",
    "bench_realloc",
    "bench_replay",
    "run_benchmarks",
    "write_results",
]
