"""Benchmark harness behind ``repro bench``.

Each benchmark times an optimized path against its escape-hatch
baseline (``--no-incremental`` / ``--no-memo`` / ``--no-vector``
equivalents) and checks that both produce **identical results** — the
speedups this repo claims are only meaningful because the optimizations
are bit-exact.

Event throughput counts :attr:`~repro.simulator.engine.FluidEngine.
TOTAL_EVENTS` — every engine loop iteration the timed section paid for,
including Algorithm 1's planning-probe simulations — sampled around
each run.  The per-run ``engine_events`` counter (final execution runs
only) is still recorded in the config for continuity with older
baselines, which divided it by a wall clock that nevertheless included
all the planning work.

Methodology
-----------
Container wall clocks are noisy, so variants are *interleaved*: each
repeat times the optimized path and the baseline back-to-back, and the
reported wall time is the best (minimum) over repeats — the standard
way to estimate the noise-free cost of a deterministic computation.
There is deliberately no absolute-time pass/fail: CI environments vary
too much for that.  The hard gate is equivalence; wall times and the
derived speedup are informational and archived as ``BENCH_<name>.json``.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from repro.obs.manifest import build_manifest


@dataclass
class BenchResult:
    """One benchmark's measurement, ready to serialize."""

    name: str
    wall_s: float
    baseline_wall_s: float
    jobs_per_s: "float | None"
    events_per_s: "float | None"
    equivalent: bool
    manifest_hash: str
    config: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.wall_s <= 0:
            return math.inf
        return self.baseline_wall_s / self.wall_s

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "jobs_per_s": self.jobs_per_s,
            "events_per_s": self.events_per_s,
            "manifest_hash": self.manifest_hash,
            "baseline": {"wall_s": self.baseline_wall_s},
            "speedup": self.speedup,
            "equivalent": self.equivalent,
            "config": dict(self.config),
        }

    def summary(self) -> str:
        eq = "ok" if self.equivalent else "MISMATCH"
        return (
            f"{self.name:8s} {self.wall_s * 1e3:9.1f} ms "
            f"(baseline {self.baseline_wall_s * 1e3:9.1f} ms, "
            f"{self.speedup:4.1f}x, equivalence {eq})"
        )


def _interleaved(
    optimized: Callable[[], object],
    baseline: Callable[[], object],
    repeats: int,
) -> tuple[float, float, object, object]:
    """Best-of-``repeats`` wall times with the variants interleaved."""
    best_o = best_b = math.inf
    out_o = out_b = None
    for _ in range(max(repeats, 1)):
        t0 = perf_counter()
        out_o = optimized()
        best_o = min(best_o, perf_counter() - t0)
        t0 = perf_counter()
        out_b = baseline()
        best_b = min(best_b, perf_counter() - t0)
    return best_o, best_b, out_o, out_b


# --------------------------------------------------------------------- #
# replay: the Fig. 14 twin-trace comparison (Fuxi + DelayStage, whose
# per-job Algorithm 1 planning dominates), all optimizations vs the
# --no-incremental --no-memo escape-hatch pipeline


def _replay_inputs(num_jobs: int, seed: int):
    """The exact job batch and cluster ``repro replay`` uses."""
    from repro.cluster.spec import alibaba_sim_cluster
    from repro.trace.generator import TraceGeneratorConfig, generate_trace
    from repro.trace.replay import to_job

    cluster = alibaba_sim_cluster(
        num_machines=3, storage_nodes=1, nic_mbps_range=(600, 2000), rng=0
    )
    trace = generate_trace(
        TraceGeneratorConfig(num_jobs=num_jobs * 2, replay_workers=3,
                             max_stages=60, replay_read_mb_per_sec=85.0),
        rng=seed,
    )
    return [to_job(tj) for tj in trace[:num_jobs]], cluster


#: Controlled references against the commit *before* the vector-engine
#: PR landed.  That PR also changed the event-throughput *metric*: the
#: old ``events_per_s`` divided the final execution runs' engine events
#: by a wall clock that included all of Algorithm 1's planning-probe
#: simulations (the bulk of the work), systematically undercounting.
#: The refreshed numbers divide ``TOTAL_EVENTS`` — every loop iteration
#: the timed section executed — by the same wall; both the old counter
#: (``engine_events``) and the new one (``total_events``) are recorded
#: in the config so either ratio can be recomputed.
_REPLAY_PRE_PR_REFERENCE = {
    "commit": "607aa01",
    "wall_s": 41.174,
    "baseline_wall_s": 174.961,
    "events_per_s": 2126.0,
    "events_metric": "engine_events (final execution runs only)",
}

_REALLOC_PRE_PR_REFERENCE = {
    "commit": "607aa01",
    "wall_s": 2.166,
    "baseline_wall_s": 2.873,
    "events_per_s": 3312.2,
    "events_metric": "engine_events (final execution runs only)",
}


def _sampled_total_events(fn):
    """Run ``fn``, returning (result, engine loop iterations executed)."""
    from repro.simulator.engine import FluidEngine

    before = FluidEngine.TOTAL_EVENTS
    result = fn()
    return result, FluidEngine.TOTAL_EVENTS - before


def bench_replay(quick: bool = False, vector: bool = True) -> BenchResult:
    """Twin-trace replay under Fuxi and DelayStage, as ``repro replay``."""
    from repro.core.delaystage import DelayStageParams
    from repro.schedulers.delaystage import DelayStageScheduler
    from repro.schedulers.fuxi import FuxiScheduler
    from repro.schedulers.runner import run_with_scheduler

    num_jobs = 8 if quick else 1000
    seed = 3
    penalty = 0.5
    jobs, cluster = _replay_inputs(num_jobs, seed)

    def _run(optimized: bool) -> tuple[list[float], int, int]:
        vec = vector and optimized
        fuxi = FuxiScheduler(track_metrics=False, contention_penalty=penalty,
                             incremental=optimized, vector=vec)
        ds = DelayStageScheduler(
            profiled=False, track_metrics=False, contention_penalty=penalty,
            params=DelayStageParams(max_slots=12, memoize=optimized,
                                    bound_prune=optimized),
            incremental=optimized, vector=vec,
        )

        def _batch():
            jcts: list[float] = []
            events = 0
            for sched in (fuxi, ds):
                for job in jobs:
                    result = run_with_scheduler(job, cluster, sched).result
                    jcts.append(result.job_completion_time(job.job_id))
                    events += int(result.counters.get("engine_events", 0))
            return jcts, events

        (jcts, events), total = _sampled_total_events(_batch)
        return jcts, events, total

    wall, base_wall, opt, base = _interleaved(
        lambda: _run(True), lambda: _run(False), repeats=2 if quick else 1
    )
    jcts, events, total = opt
    manifest = build_manifest(
        seed=seed,
        config={"bench": "replay", "jobs": num_jobs, "penalty": penalty,
                "quick": quick, "vector": vector},
    )
    return BenchResult(
        name="replay",
        wall_s=wall,
        baseline_wall_s=base_wall,
        jobs_per_s=num_jobs / wall,
        events_per_s=total / wall,
        equivalent=jcts == base[0],
        manifest_hash=manifest.config_hash,
        config={"jobs": num_jobs, "seed": seed, "penalty": penalty,
                "engine_events": events, "total_events": total,
                "quick": quick, "vector": vector,
                "pre_pr_reference": dict(_REPLAY_PRE_PR_REFERENCE)},
    )


# --------------------------------------------------------------------- #
# realloc: the engine's fair-share reallocation hot loop, isolated by
# running one big multi-job simulation (many concurrent items, so each
# event triggers an allocation over a large active set)


def bench_realloc(quick: bool = False, vector: bool = True) -> BenchResult:
    """Concurrent multi-job simulation: scoped allocator + vector engine
    vs full re-solve on the scalar object engine."""
    from repro.schedulers.fuxi import FuxiScheduler
    from repro.schedulers.runner import run_jobs_with_scheduler

    num_jobs = 30 if quick else 100
    seed = 3
    jobs, cluster = _replay_inputs(num_jobs, seed)

    def _run(optimized: bool):
        sched = FuxiScheduler(track_metrics=False, contention_penalty=0.5,
                              incremental=optimized,
                              vector=vector and optimized)
        result = run_jobs_with_scheduler(jobs, cluster, sched)
        jcts = [result.job_completion_time(j.job_id) for j in jobs]
        return jcts, int(result.counters.get("engine_events", 0))

    wall, base_wall, opt, base = _interleaved(
        lambda: _run(True), lambda: _run(False), repeats=2 if quick else 3
    )
    jcts, events = opt
    manifest = build_manifest(
        seed=seed,
        config={"bench": "realloc", "jobs": num_jobs, "quick": quick,
                "vector": vector},
    )
    return BenchResult(
        name="realloc",
        wall_s=wall,
        baseline_wall_s=base_wall,
        jobs_per_s=num_jobs / wall,
        events_per_s=events / wall,
        equivalent=jcts == base[0],
        manifest_hash=manifest.config_hash,
        config={"jobs": num_jobs, "seed": seed,
                "engine_events": events, "quick": quick, "vector": vector,
                "pre_pr_reference": dict(_REALLOC_PRE_PR_REFERENCE)},
    )


# --------------------------------------------------------------------- #
# alg1: memoized + bound-pruned Algorithm 1 scan on the ALS workload

#: Controlled measurement against the commit *before* this perf layer
#: landed (no scoped allocator, no memo/prune/probes, none of the
#: engine micro-optimizations).  The in-repo escape-hatch baseline
#: necessarily keeps the engine micro-optimizations — the hatches only
#: switch off the algorithmic layers — so it understates the PR-level
#: gain; this reference records the real before/after.  Measured on the
#: ALS scan below via interleaved adjacent-process best-of-50 runs
#: (optimized checkout vs pre-PR worktree, alternating processes).
_ALG1_PRE_PR_REFERENCE = {
    "commit": "dac4d5b",
    "wall_s": 0.0658,
    "optimized_wall_s": 0.0300,
    "speedup": 2.19,
    "methodology": (
        "interleaved adjacent-process best-of runs on the same host; "
        "the in-repo escape-hatch baseline retains this PR's engine "
        "micro-optimizations and therefore understates the PR-level gain"
    ),
}


def bench_alg1(quick: bool = False, vector: bool = True) -> BenchResult:
    """Full ALS planning scan: memo + bound pruning vs plain Alg. 1."""
    from repro.cluster.spec import uniform_cluster
    from repro.core.delaystage import DelayStageParams, delay_stage_schedule
    from repro.simulator.simulation import SimulationConfig
    from repro.workloads.library import als

    job = als()
    cluster = uniform_cluster(
        3, executors_per_worker=2, nic_mbps=450, disk_mb_per_sec=150,
        storage_nodes=0,
    )
    iters = 3 if quick else 10
    repeats = 2 if quick else 5

    def _run(optimized: bool):
        # The baseline engages every escape hatch, like the CLI's
        # --no-incremental --no-memo --no-vector bisection path: plain
        # Algorithm 1 whose candidate evaluations re-solve fair sharing
        # globally on the scalar object engine.
        params = DelayStageParams(
            memoize=optimized, bound_prune=optimized,
            sim_config=SimulationConfig(
                track_metrics=False, vector=vector)
            if optimized else SimulationConfig(
                track_metrics=False, incremental=False, vector=False),
        )
        schedule = None
        for _ in range(iters):
            schedule = delay_stage_schedule(job, cluster, params)
        return schedule

    _run(True)  # warm-up: imports, allocator caches
    wall, base_wall, opt, base = _interleaved(
        lambda: _run(True), lambda: _run(False), repeats=repeats
    )
    wall /= iters
    base_wall /= iters
    manifest = build_manifest(
        seed=None,
        config={"bench": "alg1", "workload": "als", "quick": quick},
        jobs=[job],
    )
    equivalent = (
        opt.delays == base.delays
        and opt.predicted_makespan == base.predicted_makespan
        and opt.baseline_makespan == base.baseline_makespan
    )
    return BenchResult(
        name="alg1",
        wall_s=wall,
        baseline_wall_s=base_wall,
        jobs_per_s=1.0 / wall,
        events_per_s=None,
        equivalent=equivalent,
        manifest_hash=manifest.config_hash,
        config={"workload": "als", "iters": iters, "repeats": repeats,
                "evaluations": opt.evaluations,
                "baseline_evaluations": base.evaluations, "quick": quick,
                "vector": vector,
                "pre_pr_reference": dict(_ALG1_PRE_PR_REFERENCE)},
    )


BENCHMARKS: "dict[str, Callable[[bool, bool], BenchResult]]" = {
    "realloc": bench_realloc,
    "alg1": bench_alg1,
    "replay": bench_replay,
}


def _select(names: "list[str] | None") -> list[str]:
    selected = list(BENCHMARKS) if not names else names
    for name in selected:
        if name not in BENCHMARKS:
            raise ValueError(
                f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}"
            )
    return selected


def run_benchmarks(
    names: "list[str] | None" = None,
    quick: bool = False,
    vector: bool = True,
) -> list[BenchResult]:
    """Run the named benchmarks (all by default) in definition order.

    ``vector=False`` runs each benchmark's *optimized* arm on the scalar
    object engine (the ``--no-vector`` hatch) so CI can gate both modes;
    the escape-hatch baseline arm always runs with every hatch engaged.
    """
    return [BENCHMARKS[name](quick, vector) for name in _select(names)]


def profile_benchmarks(
    names: "list[str] | None" = None,
    quick: bool = True,
    vector: bool = True,
    top: "int | None" = None,
):
    """Run benchmarks under cProfile; returns (result, report) pairs.

    Profiled wall times are distorted (see
    :mod:`repro.profiling.hotspots`), so callers must not archive the
    ``BenchResult`` timings — the equivalence bit and the hotspot table
    are the outputs.
    """
    from repro.profiling.hotspots import DEFAULT_TOP, capture_hotspots

    pairs = []
    for name in _select(names):
        result, report = capture_hotspots(
            lambda name=name: BENCHMARKS[name](quick, vector),
            name=name,
            top=top or DEFAULT_TOP,
        )
        pairs.append((result, report))
    return pairs


def write_profiles(reports, out_dir: str) -> list[str]:
    """Write one ``PROFILE_<name>.txt`` per report; returns the paths."""
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for report in reports:
        path = os.path.join(out_dir, f"PROFILE_{report.name}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(f"# {report.summary()}\n")
            fh.write(report.text)
        paths.append(path)
    return paths


def write_results(results: "list[BenchResult]", out_dir: str) -> list[str]:
    """Write one ``BENCH_<name>.json`` per result; returns the paths."""
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for res in results:
        path = os.path.join(out_dir, f"BENCH_{res.name}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(res.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths.append(path)
    return paths
