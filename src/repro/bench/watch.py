"""Perf-regression watchdog: diff fresh bench results against baselines.

``repro bench --compare <dir>`` runs the harness, then compares each
fresh :class:`~repro.bench.harness.BenchResult` against the committed
``BENCH_<name>.json`` under ``benchmarks/perf/`` (or any directory of
such files) and turns the differences into findings:

* **fail** — the fresh run is not bit-equivalent to its escape-hatch
  baseline, or its wall time regressed beyond the noise threshold
  relative to a *comparable* committed baseline;
* **info** — context that never gates: a large improvement, a missing
  baseline, or a wall comparison skipped because the runs are not
  comparable (e.g. CI's ``--quick`` inputs vs the committed full-size
  baselines — different job counts measure different work, so only the
  equivalence bit is meaningful across them).

Wall clocks are noisy, which is why the default threshold is a generous
1.5x and why equivalence — which is exact — is always the primary gate.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.harness import BenchResult

#: Fresh wall time may exceed a comparable baseline's by this factor
#: before the watchdog fails; container clocks routinely jitter tens of
#: percent, so the default only catches genuine (~2x) regressions.
DEFAULT_WALL_THRESHOLD = 1.5

#: Config keys that vary run-to-run without changing what is measured
#: (telemetry and methodology knobs, not workload shape).
_VOLATILE_CONFIG_KEYS = (
    "engine_events",
    "total_events",
    "repeats",
    "evaluations",
    "baseline_evaluations",
    "pre_pr_reference",
)


@dataclass(frozen=True)
class WatchFinding:
    """One watchdog observation about a benchmark."""

    name: str
    severity: str  # "fail" | "warn" | "info"
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.name}: {self.message}"


def _stable_config(config: "Mapping | None") -> dict:
    return {
        k: v
        for k, v in dict(config or {}).items()
        if k not in _VOLATILE_CONFIG_KEYS
    }


def comparable_configs(fresh: "Mapping | None", base: "Mapping | None") -> bool:
    """True when two runs measured the same work (wall times compare)."""
    return _stable_config(fresh) == _stable_config(base)


def load_baselines(directory: str) -> "dict[str, dict]":
    """Read every ``BENCH_*.json`` under ``directory``, keyed by name.

    Malformed files are skipped with an entry under the reserved key
    left out — the caller sees them as missing baselines.
    """
    baselines: "dict[str, dict]" = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(doc, dict) and isinstance(doc.get("name"), str):
            baselines[doc["name"]] = doc
    return baselines


def compare_to_baselines(
    fresh: "Sequence[BenchResult]",
    baselines: "Mapping[str, Mapping] | str",
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
) -> "list[WatchFinding]":
    """Diff fresh results against baselines (a mapping or a directory)."""
    if isinstance(baselines, str):
        baselines = load_baselines(baselines)
    if wall_threshold <= 1.0:
        raise ValueError(
            f"wall_threshold must exceed 1.0, got {wall_threshold}"
        )
    findings: "list[WatchFinding]" = []
    for result in fresh:
        if not result.equivalent:
            findings.append(
                WatchFinding(
                    result.name,
                    "fail",
                    "optimized path and escape-hatch baseline disagree "
                    "(equivalence break)",
                )
            )
        base = baselines.get(result.name)
        if base is None:
            findings.append(
                WatchFinding(
                    result.name, "info", "no committed baseline to compare"
                )
            )
            continue
        if not bool(base.get("equivalent", True)):
            findings.append(
                WatchFinding(
                    result.name,
                    "info",
                    "committed baseline itself recorded an equivalence "
                    "break; wall comparison skipped",
                )
            )
            continue
        if not comparable_configs(result.config, base.get("config")):
            findings.append(
                WatchFinding(
                    result.name,
                    "info",
                    "baseline measured different inputs "
                    f"({_stable_config(base.get('config'))} vs "
                    f"{_stable_config(result.config)}); wall comparison "
                    "skipped, equivalence checked",
                )
            )
            continue
        base_wall = float(base.get("wall_s", 0.0))
        if base_wall <= 0 or result.wall_s <= 0:
            findings.append(
                WatchFinding(
                    result.name, "info", "non-positive wall time; skipped"
                )
            )
            continue
        ratio = result.wall_s / base_wall
        if ratio > wall_threshold:
            findings.append(
                WatchFinding(
                    result.name,
                    "fail",
                    f"wall time regressed {ratio:.2f}x vs baseline "
                    f"({result.wall_s:.3f}s vs {base_wall:.3f}s, "
                    f"threshold {wall_threshold:.2f}x)",
                )
            )
        elif ratio < 1.0 / wall_threshold:
            findings.append(
                WatchFinding(
                    result.name,
                    "info",
                    f"wall time improved {1.0 / ratio:.2f}x vs baseline "
                    f"({result.wall_s:.3f}s vs {base_wall:.3f}s) — "
                    "consider refreshing the committed baseline",
                )
            )
        else:
            findings.append(
                WatchFinding(
                    result.name,
                    "info",
                    f"wall time within noise ({ratio:.2f}x of baseline)",
                )
            )
    return findings


def has_failures(findings: "Sequence[WatchFinding]") -> bool:
    return any(f.severity == "fail" for f in findings)


def render_findings(findings: "Sequence[WatchFinding]") -> str:
    if not findings:
        return "watchdog: nothing to compare"
    lines = ["watchdog findings:"]
    lines.extend(f"  {f}" for f in findings)
    verdict = "FAIL" if has_failures(findings) else "ok"
    lines.append(f"watchdog verdict: {verdict}")
    return "\n".join(lines)
