"""Delay-schedule result objects."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.dag.paths import ExecutionPath


@dataclass(frozen=True)
class DelaySchedule:
    """The output of Algorithm 1 for one job.

    Attributes
    ----------
    job_id:
        Job the schedule applies to.
    delays:
        ``X``: extra submission delay (seconds past ready time) per
        parallel stage.  Stages absent from the table (sequential
        stages) submit immediately.
    predicted_makespan:
        Model-predicted makespan of the parallel-stage set under
        ``delays`` (``T_max`` at termination of Algorithm 1).
    baseline_makespan:
        Model-predicted makespan with all-zero delays, for reporting
        the expected improvement.
    paths:
        The execution paths in the order the algorithm processed them.
    standalone_times:
        ``t̂_k`` used to order the paths (Alg. 1 line 2).
    evaluations:
        Number of candidate schedules evaluated (complexity metric for
        Fig. 15).
    compute_seconds:
        Wall-clock time Algorithm 1 took (Sec. 5.4's strategy
        computation time).
    """

    job_id: str
    delays: dict[str, float]
    predicted_makespan: float
    baseline_makespan: float
    paths: tuple[ExecutionPath, ...]
    standalone_times: dict[str, float] = field(default_factory=dict)
    evaluations: int = 0
    compute_seconds: float = 0.0

    @property
    def delayed_stages(self) -> list[str]:
        """Stages receiving a strictly positive delay."""
        return sorted(sid for sid, x in self.delays.items() if x > 0)

    @property
    def predicted_improvement(self) -> float:
        """Fractional makespan reduction the model expects vs no delays."""
        if self.baseline_makespan <= 0:
            return 0.0
        return 1.0 - self.predicted_makespan / self.baseline_makespan

    def as_mapping(self) -> Mapping[str, float]:
        return dict(self.delays)
