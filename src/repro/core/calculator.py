"""Delay Time Calculator: the first prototype module of Fig. 9.

End-to-end reproduction of the paper's calculator pipeline:

1. profile the job on sampled input data (``repro.profiling``),
2. measure cluster bandwidths (with observation noise),
3. run Algorithm 1 on the resulting *model* job and *measured*
   cluster,
4. persist the delay table in ``metrics.properties`` format for the
   Stage Delayer.

Because planning happens on estimated parameters while execution
happens on the true ones, the calculator's schedules inherit realistic
model error (Appendix A.2).
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.core.delaystage import DelayStageParams, delay_stage_schedule
from repro.core.properties import write_metrics_properties
from repro.core.schedule import DelaySchedule
from repro.dag.job import Job
from repro.obs.tracer import Tracer
from repro.profiling.measurement import measure_cluster
from repro.profiling.profiler import ProfileReport, profile_job
from repro.util.rng import resolve_rng


class DelayTimeCalculator:
    """Compute delay schedules from profiled job/cluster observations.

    Parameters
    ----------
    cluster:
        The real cluster the job will run on.
    params:
        Algorithm 1 tunables.
    sample_fraction:
        Profiling-run input fraction (paper default 10 %).
    profiling_noise / measurement_noise:
        Lognormal sigma of parameter estimation error; set both to 0
        for an oracle calculator (useful in tests isolating the
        algorithm from estimation error).
    rng:
        Seed controlling both noise sources.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        params: "DelayStageParams | None" = None,
        *,
        sample_fraction: float = 0.1,
        profiling_noise: float = 0.03,
        measurement_noise: float = 0.02,
        rng: "int | np.random.Generator | None" = 0,
    ) -> None:
        self.cluster = cluster
        self.params = params or DelayStageParams()
        self.sample_fraction = sample_fraction
        self.profiling_noise = profiling_noise
        self.measurement_noise = measurement_noise
        self._rng = resolve_rng(rng)
        self.last_profile: "ProfileReport | None" = None

    def profile(self, job: Job) -> ProfileReport:
        """Run the sampled profiling pass and cache the report."""
        report = profile_job(
            job,
            self.cluster,
            sample_fraction=self.sample_fraction,
            noise=self.profiling_noise,
            rng=self._rng,
        )
        self.last_profile = report
        return report

    def compute(
        self,
        job: Job,
        profile: "ProfileReport | None" = None,
        tracer: "Tracer | None" = None,
    ) -> DelaySchedule:
        """Profile (unless given) and run Algorithm 1 on the model job.

        ``tracer`` (see :mod:`repro.obs`) receives Algorithm 1's
        decision-audit spans; planning happens on the *model* job, so
        the audit records the calculator's actual reasoning, estimation
        error included.
        """
        report = profile or self.profile(job)
        model_job = report.to_model_job()
        # Scalar (homogenized) measurement: the calculator consumes
        # scalar bandwidth parameters, and a homogeneous model cluster
        # keeps Algorithm 1's fluid evaluations fast.
        measured = measure_cluster(
            self.cluster, self.measurement_noise, self._rng, homogenize=True
        )
        return delay_stage_schedule(model_job, measured, self.params, tracer=tracer)

    def compute_and_store(
        self,
        job: Job,
        path: "str | pathlib.Path",
        profile: "ProfileReport | None" = None,
        append: bool = False,
        tracer: "Tracer | None" = None,
    ) -> DelaySchedule:
        """Compute the schedule and persist it as ``metrics.properties``."""
        schedule = self.compute(job, profile, tracer=tracer)
        write_metrics_properties(path, job.job_id, schedule.delays, append=append)
        return schedule
