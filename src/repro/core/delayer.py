"""Stage Delayer: applies a delay table at stage-submission time.

This is the second prototype module of Fig. 9 — the counterpart of the
``stageDelayScheduling()`` function the paper adds to Spark's
``DAGScheduler.submitStage()``.  It is a
:class:`~repro.simulator.simulation.SubmissionPolicy`: the simulator
invokes it when a stage becomes ready, and it answers how long to
sleep the submission.

Unknown stages are never delayed, matching the prototype's behaviour
of leaving sequential stages and un-profiled jobs untouched.
"""

from __future__ import annotations

import pathlib
from typing import Mapping

from repro.core.properties import read_metrics_properties
from repro.core.schedule import DelaySchedule
from repro.dag.job import Job


class StageDelayer:
    """Submission policy backed by a per-job delay table."""

    def __init__(self, tables: Mapping[str, Mapping[str, float]]) -> None:
        self._tables: dict[str, dict[str, float]] = {}
        for jid, table in tables.items():
            clean: dict[str, float] = {}
            for sid, x in table.items():
                if x < 0:
                    raise ValueError(f"negative delay for {jid}/{sid}: {x}")
                clean[sid] = float(x)
            self._tables[jid] = clean

    # -- constructors --------------------------------------------------- #

    @classmethod
    def from_schedule(cls, schedule: DelaySchedule) -> "StageDelayer":
        """Wrap a single job's Algorithm 1 output."""
        return cls({schedule.job_id: schedule.delays})

    @classmethod
    def from_schedules(cls, schedules: "list[DelaySchedule]") -> "StageDelayer":
        return cls({s.job_id: s.delays for s in schedules})

    @classmethod
    def from_properties(cls, path: "str | pathlib.Path") -> "StageDelayer":
        """Load the delay tables the calculator persisted (Sec. 4.2)."""
        return cls(read_metrics_properties(path))

    # -- SubmissionPolicy ------------------------------------------------ #

    def delay(self, job: Job, stage_id: str, ready_time: float) -> float:
        """Sleep duration for this stage's submission (0 if untabulated)."""
        return self._tables.get(job.job_id, {}).get(stage_id, 0.0)

    # -- introspection --------------------------------------------------- #

    def table(self, job_id: str) -> dict[str, float]:
        return dict(self._tables.get(job_id, {}))

    def __contains__(self, job_id: object) -> bool:
        return job_id in self._tables


class ReplanningStageDelayer(StageDelayer):
    """A :class:`StageDelayer` whose table may be revised mid-run.

    The fault layer (:mod:`repro.faults`) recomputes Algorithm 1
    against the surviving cluster when the topology changes and pushes
    the fresh delays for not-yet-launched stages through
    :meth:`update_table`.  ``params`` carries the
    :class:`~repro.core.delaystage.DelayStageParams` the recompute
    should use (typically the ones that produced the original table).

    A submission timer that is already pending when an update lands
    keeps its original delay — the sleep began under the old plan and,
    like a submitted stage, is history.
    """

    def __init__(self, tables, params=None) -> None:
        super().__init__(tables)
        self.params = params
        #: Revision count per job (observability).
        self.revisions: dict[str, int] = {}

    @classmethod
    def from_schedule(cls, schedule: DelaySchedule, params=None) -> "ReplanningStageDelayer":
        return cls({schedule.job_id: schedule.delays}, params=params)

    def update_table(self, job_id: str, delays: Mapping[str, float]) -> None:
        """Merge re-planned delays for ``job_id`` into the live table."""
        table = self._tables.setdefault(job_id, {})
        for sid, x in delays.items():
            if x < 0:
                raise ValueError(f"negative replanned delay for {job_id}/{sid}: {x}")
            table[sid] = float(x)
        self.revisions[job_id] = self.revisions.get(job_id, 0) + 1
