"""Stage Delayer: applies a delay table at stage-submission time.

This is the second prototype module of Fig. 9 — the counterpart of the
``stageDelayScheduling()`` function the paper adds to Spark's
``DAGScheduler.submitStage()``.  It is a
:class:`~repro.simulator.simulation.SubmissionPolicy`: the simulator
invokes it when a stage becomes ready, and it answers how long to
sleep the submission.

Unknown stages are never delayed, matching the prototype's behaviour
of leaving sequential stages and un-profiled jobs untouched.
"""

from __future__ import annotations

import pathlib
from typing import Mapping

from repro.core.properties import read_metrics_properties
from repro.core.schedule import DelaySchedule
from repro.dag.job import Job


class StageDelayer:
    """Submission policy backed by a per-job delay table."""

    def __init__(self, tables: Mapping[str, Mapping[str, float]]) -> None:
        self._tables: dict[str, dict[str, float]] = {}
        for jid, table in tables.items():
            clean: dict[str, float] = {}
            for sid, x in table.items():
                if x < 0:
                    raise ValueError(f"negative delay for {jid}/{sid}: {x}")
                clean[sid] = float(x)
            self._tables[jid] = clean

    # -- constructors --------------------------------------------------- #

    @classmethod
    def from_schedule(cls, schedule: DelaySchedule) -> "StageDelayer":
        """Wrap a single job's Algorithm 1 output."""
        return cls({schedule.job_id: schedule.delays})

    @classmethod
    def from_schedules(cls, schedules: "list[DelaySchedule]") -> "StageDelayer":
        return cls({s.job_id: s.delays for s in schedules})

    @classmethod
    def from_properties(cls, path: "str | pathlib.Path") -> "StageDelayer":
        """Load the delay tables the calculator persisted (Sec. 4.2)."""
        return cls(read_metrics_properties(path))

    # -- SubmissionPolicy ------------------------------------------------ #

    def delay(self, job: Job, stage_id: str, ready_time: float) -> float:
        """Sleep duration for this stage's submission (0 if untabulated)."""
        return self._tables.get(job.job_id, {}).get(stage_id, 0.0)

    # -- introspection --------------------------------------------------- #

    def table(self, job_id: str) -> dict[str, float]:
        return dict(self._tables.get(job_id, {}))

    def __contains__(self, job_id: object) -> bool:
        return job_id in self._tables
