"""Reading/writing the delay table in Spark's properties format.

The paper's prototype stores the computed delay schedule ``X`` in
Spark's default ``metrics.properties`` configuration file, from which
the stage delayer reads it at submission time (Sec. 4.2).  We
reproduce that interface: Java-properties lines of the form
``spark.delaystage.<job_id>.<stage_id>=<seconds>``.
"""

from __future__ import annotations

import pathlib
from typing import Mapping

_PREFIX = "spark.delaystage"


def write_metrics_properties(
    path: "str | pathlib.Path",
    job_id: str,
    delays: Mapping[str, float],
    append: bool = False,
) -> None:
    """Persist a job's delay table in properties format.

    Parameters
    ----------
    append:
        Add to an existing file (multi-job clusters) instead of
        overwriting.
    """
    path = pathlib.Path(path)
    lines = [
        f"{_PREFIX}.{job_id}.{sid}={float(x):.6f}\n" for sid, x in sorted(delays.items())
    ]
    mode = "a" if append else "w"
    with path.open(mode, encoding="utf-8") as fh:
        if not append:
            fh.write("# DelayStage schedule (stage submission delays, seconds)\n")
        fh.writelines(lines)


def read_metrics_properties(
    path: "str | pathlib.Path", job_id: "str | None" = None
) -> dict[str, dict[str, float]]:
    """Parse a properties file back into ``{job_id: {stage_id: delay}}``.

    Lines that are blank, comments, or unrelated properties are
    ignored, as a real ``metrics.properties`` mixes the delay table
    with Spark's own metric settings.
    """
    out: dict[str, dict[str, float]] = {}
    path = pathlib.Path(path)
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith(("#", "!")):
            continue
        if "=" not in line:
            continue
        key, _, value = line.partition("=")
        key = key.strip()
        if not key.startswith(_PREFIX + "."):
            continue
        rest = key[len(_PREFIX) + 1 :]
        jid, _, sid = rest.partition(".")
        if not jid or not sid:
            raise ValueError(f"malformed delaystage property line: {raw!r}")
        try:
            delay = float(value.strip())
        except ValueError as exc:
            raise ValueError(f"non-numeric delay in line: {raw!r}") from exc
        if delay < 0:
            raise ValueError(f"negative delay in line: {raw!r}")
        out.setdefault(jid, {})[sid] = delay
    if job_id is not None:
        return {job_id: out.get(job_id, {})}
    return out
