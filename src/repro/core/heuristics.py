"""Closed-form delay heuristics: cheap alternatives to Algorithm 1.

Algorithm 1 evaluates O(|K| · m) fluid-model candidates.  For latency-
critical planning (or the trace's 186-stage giants) this module offers
``staggered_read_schedule``: an O(|K|) analytic heuristic that treats
the parallel stages as a two-machine flow shop — the network "machine"
runs shuffle reads, the CPU "machine" runs processing — and staggers
path heads so their reads serialize instead of colliding.

Under the paper's model this is exactly the interleaving intuition of
Fig. 6: each delayed stage starts fetching the moment the network
frees up, and computes while the next stage fetches.  It knows nothing
about second-order interference (which Algorithm 1's fluid evaluation
captures), so it trades a few points of JCT for ~1000× cheaper
planning; the greedy-vs-heuristic bench quantifies the trade.
"""

from __future__ import annotations

import time as _time

from repro.cluster.spec import ClusterSpec
from repro.core.ordering import PathOrder, order_paths
from repro.core.schedule import DelaySchedule
from repro.dag.graph import parallel_stage_set
from repro.dag.job import Job
from repro.dag.paths import execution_paths
from repro.model.perf import (
    _sources_for,
    standalone_read_time,
    standalone_stage_times,
)


def staggered_read_schedule(
    job: Job,
    cluster: ClusterSpec,
    *,
    order: "PathOrder | str" = PathOrder.DESCENDING,
    max_paths: int = 256,
    rng: "int | None" = 0,
) -> DelaySchedule:
    """Analytic delays: serialize path-head reads in path order.

    The first (longest) path's head fetches immediately; each later
    path's head is delayed until the network is projected to free up —
    the cumulative standalone read time of the heads before it.  Stages
    deeper in a path inherit zero extra delay (their parents gate them
    anyway).

    Returns a :class:`~repro.core.schedule.DelaySchedule` whose
    ``predicted_makespan``/``baseline_makespan`` are *not* model-backed
    (no fluid evaluation is run); they are analytic projections from
    standalone times, kept so downstream code can treat both schedule
    sources uniformly.
    """
    started = _time.perf_counter()
    members = parallel_stage_set(job)
    if not members:
        return DelaySchedule(job.job_id, {}, 0.0, 0.0, (), {}, 0,
                             _time.perf_counter() - started)

    t_hat = standalone_stage_times(job, cluster)
    paths = execution_paths(
        job, {sid: t_hat[sid] for sid in members}, max_paths=max_paths
    )
    paths = order_paths(paths, order, rng)

    delays: dict[str, float] = {}
    network_free_at = 0.0
    for path in paths:
        head = path.stages[0]
        if head in delays:
            continue  # shared prefix already scheduled via earlier path
        stage = job.stage(head)
        read = standalone_read_time(stage, cluster, _sources_for(job, head, cluster))
        delays[head] = network_free_at
        network_free_at += read
        for sid in path.stages[1:]:
            delays.setdefault(sid, 0.0)

    # Analytic projections (no interference modeled): each path ends at
    # its head delay plus its standalone time.
    projected = max(
        delays[p.stages[0]] + p.execution_time for p in paths
    )
    baseline = max(p.execution_time for p in paths)

    return DelaySchedule(
        job_id=job.job_id,
        delays=delays,
        predicted_makespan=projected,
        baseline_makespan=baseline,
        paths=tuple(paths),
        standalone_times=t_hat,
        evaluations=0,
        compute_seconds=_time.perf_counter() - started,
    )
