"""Mid-run DelayStage re-planning against a degraded cluster.

The paper plans delays once, offline, against a healthy cluster.  When
the fault layer (:mod:`repro.faults`) shrinks or slows the cluster
mid-run, the original delay table is stale: it interleaves resource
phases that the surviving nodes can no longer sustain.  This module
re-runs Algorithm 1 against the *surviving* cluster and returns fresh
delays for the stages that have not launched yet.

Already-submitted stages are **frozen**: their submission moment has
passed, so their delays are unchangeable history.  The recompute sees
the whole job (frozen stages still occupy resources in the model — the
fluid evaluation inside Algorithm 1 replays them), but only the
non-frozen entries of the resulting table are returned.
"""

from __future__ import annotations

from typing import AbstractSet

from repro.cluster.spec import ClusterSpec
from repro.core.delaystage import DelayStageParams, delay_stage_schedule
from repro.dag.job import Job
from repro.obs.tracer import Tracer


def replan_delays(
    job: Job,
    cluster: ClusterSpec,
    frozen: "AbstractSet[str]",
    params: "DelayStageParams | None" = None,
    tracer: "Tracer | None" = None,
) -> dict[str, float]:
    """Recompute Algorithm 1 delays for the not-yet-launched stages.

    Parameters
    ----------
    job:
        The job being re-planned (profiled or ground-truth, matching
        whatever the original planning used).
    cluster:
        The *surviving* cluster: dead nodes removed, degradation
        factors applied (see
        :meth:`repro.faults.injector.FaultInjector.degraded_cluster`).
    frozen:
        Stage ids whose submission already happened; their delays are
        immutable and excluded from the returned table.

    Returns
    -------
    dict
        ``{stage_id: delay_seconds}`` for exactly the stages of ``job``
        that Algorithm 1 tabulated and that are not frozen.  Callers
        merge this into the live policy via
        :meth:`~repro.core.delayer.ReplanningStageDelayer.update_table`.
    """
    unknown = set(frozen) - set(job.stage_ids)
    if unknown:
        raise ValueError(f"frozen stages not in job {job.job_id!r}: {sorted(unknown)}")
    schedule = delay_stage_schedule(job, cluster, params, tracer=tracer)
    return {
        sid: delay for sid, delay in schedule.delays.items() if sid not in frozen
    }
