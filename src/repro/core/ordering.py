"""Execution-path ordering variants (paper Sec. 4.1, evaluated in Fig. 14).

DelayStage processes execution paths in *descending* order of their
standalone execution time, so the long-running path is scheduled first
(with zero delay) and shorter paths are delayed into its resource
gaps.  The paper also evaluates random and ascending orders as
ablations; on the Alibaba trace the three complete jobs in 871, 945,
and 996 seconds on average respectively.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.dag.paths import ExecutionPath
from repro.util.rng import resolve_rng


class PathOrder(enum.Enum):
    """How Algorithm 1 iterates over execution paths."""

    DESCENDING = "descending"
    ASCENDING = "ascending"
    RANDOM = "random"


def order_paths(
    paths: Sequence[ExecutionPath],
    order: "PathOrder | str" = PathOrder.DESCENDING,
    rng: "int | object | None" = None,
) -> list[ExecutionPath]:
    """Return paths reordered according to the chosen variant.

    ``paths`` are expected in descending-time order (as produced by
    :func:`repro.dag.paths.execution_paths`); ordering is nevertheless
    recomputed from each path's ``execution_time`` so callers may pass
    arbitrary sequences.
    """
    order = PathOrder(order)
    if order is PathOrder.DESCENDING:
        return sorted(paths, key=lambda p: (-p.execution_time, p.stages))
    if order is PathOrder.ASCENDING:
        return sorted(paths, key=lambda p: (p.execution_time, p.stages))
    gen = resolve_rng(rng)
    out = list(paths)
    gen.shuffle(out)
    return out
