"""Algorithm 1: the DelayStage stage-delay-scheduling strategy.

Answers "which stage and how much time should we delay": execution
paths are processed in descending order of standalone execution time;
within a path, each not-yet-scheduled stage's delay is chosen by
scanning a slotted range of candidates and keeping the one that
minimizes the model-predicted makespan of the *scheduled* parallel
stages, given the delays already fixed for previously processed paths.

Two semantics choices mirror the paper's prototype:

* **Delay semantics** — ``x_k`` is the extra time the stage delayer
  sleeps *after the stage becomes ready* (all parents finished).  This
  matches the ``stageDelayScheduling()`` hook, automatically satisfies
  precedence constraints (6)–(7), and makes the scan's lower bound
  ``l_k = 0``.
* **Greedy visibility** — when optimizing stage ``k``, the model
  contains the already-scheduled parallel stages (the paper "updates
  the completion time of ... the scheduled stages interfering with the
  stage k", line 14) plus every sequential stage, but *not* the
  parallel stages of paths not yet processed: the long-running path is
  planned first as if it had the cluster to itself, and shorter paths
  are then fitted into its resource gaps.  Unscheduled parallel stages
  are represented by zero-volume *phantoms* so DAG dependencies still
  resolve.

Complexity is ``O(|K| * m)`` candidate evaluations, ``m`` the slot
count (paper Sec. 4.1).  The paper slots time at one second; this
reproduction additionally caps the number of slots per stage
(``max_slots``) and widens the slot accordingly, keeping the
linear-in-stages runtime of Fig. 15 at Python speed.
"""

from __future__ import annotations

import math as _math
import time as _time
from dataclasses import dataclass, replace as _dc_replace

from repro.cluster.spec import ClusterSpec
from repro.core.bounds import ready_lower_bounds
from repro.core.ordering import PathOrder, order_paths
from repro.core.schedule import DelaySchedule
from repro.dag.graph import parallel_stage_set
from repro.dag.job import Job
from repro.dag.paths import execution_paths
from repro.model.interference import EvaluationCache, evaluate_schedule, probe_schedule
from repro.model.perf import standalone_stage_times
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulator.simulation import SimulationConfig
from repro.util.validation import check_positive

#: Track the decision audit lands on in trace exports.
DECISIONS_TRACK = ("scheduler", "decisions")


@dataclass(frozen=True)
class DelayStageParams:
    """Tunables of Algorithm 1.

    Parameters
    ----------
    order:
        Execution-path processing order (descending is the paper's
        default; random/ascending are the Fig. 14 ablations).
    slot:
        Candidate-delay granularity in seconds (paper: 1 s).
    max_slots:
        Upper bound on candidates per stage; the effective slot is
        ``max(slot, span / max_slots)``.
    max_paths:
        Path-enumeration budget (see :func:`repro.dag.paths.execution_paths`).
    rng:
        Seed for the random path order.
    sim_config:
        Simulation behaviour the model evaluations assume (e.g. a
        contention penalty matching the execution environment).  Metric
        tracking is always forced off for evaluations.
    """

    order: "PathOrder | str" = PathOrder.DESCENDING
    slot: float = 1.0
    max_slots: int = 48
    max_paths: int = 256
    rng: "int | None" = 0
    sim_config: "SimulationConfig | None" = None
    #: Safety net absent from the paper's pseudocode but natural in a
    #: deployment: if the final full-model evaluation predicts the
    #: greedy schedule to be *worse* than immediate submission (possible
    #: on wide DAGs, where early paths are planned without seeing later
    #: ones), fall back to zero delays — DelayStage then degenerates to
    #: stock scheduling for that job instead of harming it.
    fallback_to_immediate: bool = True
    #: Coordinate-descent refinement passes after the greedy (0 = the
    #: paper's algorithm).  Each pass re-scans every stage's delay with
    #: the complete schedule visible, keeping strict improvements;
    #: roughly doubles planning cost per pass.
    refine_passes: int = 0
    #: Memoize candidate-schedule fluid evaluations within this planning
    #: run, keyed on (phantom set, delay table) — see
    #: :class:`repro.model.interference.EvaluationCache`.  Exact (a hit
    #: returns the identical evaluation); disable (``--no-memo``) only
    #: for bisection.
    memoize: bool = True
    #: Prune scan candidates whose admissible finish-time lower bound
    #: (``ready_lb + x + t_hat``, :func:`repro.core.bounds.ready_lower_bounds`)
    #: already reaches the incumbent makespan.  Never changes the chosen
    #: delays — a pruned candidate provably cannot win the smallest-delay
    #: tiebreak.  Automatically off when the evaluation config pipelines
    #: shuffles or caps fan-in, where stage durations can beat the
    #: standalone time and the bound would not be admissible.
    bound_prune: bool = True

    def __post_init__(self) -> None:
        check_positive(self.slot, "slot")
        if self.max_slots < 2:
            raise ValueError("max_slots must be >= 2")
        if self.refine_passes < 0:
            raise ValueError("refine_passes must be >= 0")


def _phantom_job(job: Job, hidden: "set[str]") -> Job:
    """Copy of ``job`` where ``hidden`` stages consume no resources.

    Phantom stages complete (nearly) instantly, so DAG dependencies of
    scheduled stages still resolve while unscheduled parallel stages
    exert no interference on the model.
    """
    if not hidden:
        return job
    stages = []
    for stage in job:
        if stage.stage_id in hidden:
            stages.append(
                _dc_replace(stage, input_bytes=0.0, output_bytes=0.0, process_rate=1.0)
            )
        else:
            stages.append(stage)
    return Job(job.job_id, stages, job.edges)


def delay_stage_schedule(
    job: Job,
    cluster: ClusterSpec,
    params: "DelayStageParams | None" = None,
    pair_capacities: "dict[tuple[str, str], float] | None" = None,
    tracer: "Tracer | None" = None,
) -> DelaySchedule:
    """Run Algorithm 1 and return the delay schedule ``X``.

    ``job`` should carry *profiled* parameters when mimicking the
    prototype end to end (see
    :class:`repro.core.calculator.DelayTimeCalculator`); passing the
    ground-truth job instead gives the algorithm a perfect model.
    ``pair_capacities`` carries per-pair WAN caps for geo-distributed
    clusters (see :mod:`repro.cluster.geo`) into the model.

    When a :class:`~repro.obs.tracer.Tracer` is supplied, every stage
    scan emits a decision-audit span on the scheduler track — the scan
    bounds ``[l_k, u_k]``, each candidate delay evaluated with its
    predicted makespan, pruned candidate count, and the chosen delay —
    plus a final ``schedule`` record carrying the exact delay table
    returned, so the algorithm's reasoning can be replayed offline.
    """
    params = params or DelayStageParams()
    tracer = tracer if tracer is not None else NULL_TRACER
    started = _time.perf_counter()

    members = parallel_stage_set(job)
    if params.sim_config is not None:
        eval_config = _dc_replace(
            params.sim_config,
            track_metrics=False,
            track_occupancy=False,
            track_events=False,
        )
    else:
        eval_config = SimulationConfig(track_metrics=False, track_events=False)

    if not members:
        # Fully sequential job: nothing to delay.
        tracer.instant(
            "schedule",
            _time.perf_counter() - started,
            track=DECISIONS_TRACK,
            cat="decision",
            args={"job_id": job.job_id, "delays": {}, "fallback_applied": False,
                  "predicted_makespan": 0.0, "baseline_makespan": 0.0,
                  "evaluations": 0},
        )
        return DelaySchedule(
            job_id=job.job_id,
            delays={},
            predicted_makespan=0.0,
            baseline_makespan=0.0,
            paths=(),
            standalone_times={},
            evaluations=0,
            compute_seconds=_time.perf_counter() - started,
        )

    # Lines 1-4: standalone times, paths, initial makespan, path order.
    t_hat = standalone_stage_times(job, cluster)
    paths = execution_paths(
        job,
        stage_times={sid: t_hat[sid] for sid in members},
        max_paths=params.max_paths,
    )
    paths = order_paths(paths, params.order, params.rng)

    evaluations = 0
    cache = EvaluationCache() if params.memoize else None

    def _evaluate(model: Job, hidden: "frozenset[str]", trial: dict) -> object:
        """Fluid evaluation memoized on (phantom set, delay table)."""
        nonlocal evaluations
        if cache is not None:
            key = EvaluationCache.key(hidden, trial)
            hit = cache.get(key)
            if hit is not None:
                return hit
        ev = evaluate_schedule(
            model, cluster, trial, members=members, config=eval_config,
            pair_capacities=pair_capacities,
        )
        evaluations += 1
        if cache is not None:
            cache.put(key, ev)
        return ev

    def _probe(
        model: Job,
        hidden: "frozenset[str]",
        trial: dict,
        horizon: float,
        watch: "set[str]",
    ) -> "dict[str, float]":
        """Truncated evaluation: exact finish times up to ``horizon`` or
        until all of ``watch`` finished; missing stages finish later."""
        nonlocal evaluations
        if cache is not None:
            hit = cache.get(EvaluationCache.key(hidden, trial))
            if hit is not None:
                return hit.stage_finish
        evaluations += 1
        return probe_schedule(
            model, cluster, trial, horizon=horizon, watch=watch,
            config=eval_config, pair_capacities=pair_capacities,
        )

    # The admissible prune assumes stage durations never beat their
    # standalone times; pipelined shuffle (prefetch overlaps the read
    # with the parent's compute) and fan-in capping break that, so the
    # bound is only trusted for the plain fluid model.
    use_bound = (
        params.bound_prune
        and not eval_config.pipelined_shuffle
        and eval_config.fanin is None
    )
    pruned_by_bound_total = 0

    baseline = _evaluate(job, frozenset(), {})

    # Line 3: T_max from standalone path times; it also upper-bounds the
    # candidate scans before any simulation-backed value exists.
    t_max = max(p.execution_time for p in paths)

    delays: dict[str, float] = {}  # X; absence == unscheduled (the paper's -1)

    # Lines 5-21: per path, per stage, scan candidate delays.
    for path in paths:
        for stage_id in path:
            if stage_id in delays:
                continue  # lines 7-9: already scheduled via an earlier path

            # The model for this scan: scheduled stages + this candidate
            # are real; parallel stages of unprocessed paths are phantoms.
            visible = set(delays) | {stage_id}
            hidden = frozenset(members) - visible
            model = _phantom_job(job, set(hidden))

            # Admissible earliest-ready bound for the prune below; 0 when
            # the bound is not trusted, degenerating to the plain prune.
            if use_bound:
                ready_lb = ready_lower_bounds(
                    job, t_hat, members=members, visible=visible, delays=delays
                )[stage_id]
            else:
                ready_lb = 0.0

            # Line 10: bounds of the scan.  With ready-relative delays
            # the lower bound is 0; delaying past the incumbent T_max
            # could only extend the makespan.
            lower, upper = 0.0, max(t_max, params.slot)
            slot = max(params.slot, (upper - lower) / params.max_slots)
            candidates = [lower]
            x = lower + slot
            while x < upper + 1e-9:
                candidates.append(min(x, upper))
                x += slot

            scan_t0 = _time.perf_counter() - started
            scanned: "list[list[float]]" = []
            rejected: "list[float]" = []
            best_x = 0.0
            best_obj = None
            pruned_by_bound = 0
            horizon_rejected = 0
            for idx, x_hat in enumerate(candidates):  # line 11
                # Prune: the stage becomes ready no earlier than
                # ``ready_lb`` and finishes no earlier than its delay
                # plus its standalone time (interference only slows it
                # down), so once that admissible lower bound reaches the
                # incumbent the remaining (larger) candidates cannot win.
                if (
                    best_obj is not None
                    and ready_lb + x_hat + t_hat[stage_id] >= best_obj
                ):
                    # Of the remaining candidates, count those only the
                    # ready-time bound (not the plain delay + standalone
                    # check) rules out, so the audit stays truthful about
                    # what the new prune is responsible for.
                    pruned_by_bound = sum(
                        1
                        for x in candidates[idx:]
                        if x + t_hat[stage_id] < best_obj
                    )
                    break
                trial = dict(delays)
                trial[stage_id] = x_hat
                # Lines 12-15: re-evaluate stage/path times under the
                # candidate schedule (shares, interference, completion
                # updates all happen inside the fluid evaluation).  With
                # an incumbent, the evaluation is truncated at the
                # incumbent makespan: the trajectory up to the horizon is
                # exact, so a candidate whose watched stages have not all
                # finished by then provably cannot win and the model tail
                # is never simulated.
                if params.bound_prune:
                    horizon = best_obj if best_obj is not None else _math.inf
                    finish = _probe(model, hidden, trial, horizon, visible)
                    obj = max(finish.get(sid, _math.inf) for sid in visible)
                    if _math.isinf(obj):
                        horizon_rejected += 1
                        if tracer.enabled:
                            rejected.append(x_hat)
                        continue
                else:
                    ev = _evaluate(model, hidden, trial)
                    obj = max(ev.stage_finish[sid] for sid in visible)
                if tracer.enabled:
                    scanned.append([x_hat, obj])
                # Lines 16-18, with deterministic smallest-delay tiebreak.
                if best_obj is None or obj < best_obj - 1e-9:
                    best_obj = obj
                    best_x = x_hat
            pruned_by_bound_total += pruned_by_bound

            delays[stage_id] = best_x
            if best_obj is not None:
                # Line 17: the incumbent makespan bounds later scans; it
                # may grow as more paths' stages enter the model.
                t_max = max(best_obj, t_max)

            if tracer.enabled:
                scan_t1 = _time.perf_counter() - started
                tracer.counters.inc("alg1.scans")
                tracer.counters.inc("alg1.scan_evaluations", len(scanned))
                if pruned_by_bound:
                    tracer.counters.inc("alg1.pruned_by_bound", pruned_by_bound)
                if horizon_rejected:
                    tracer.counters.inc("alg1.horizon_rejected", horizon_rejected)
                tracer.add_span(
                    f"scan:{stage_id}",
                    scan_t0,
                    max(scan_t1 - scan_t0, 0.0),
                    track=DECISIONS_TRACK,
                    cat="decision",
                    args={"audit": {
                        "job_id": job.job_id,
                        "stage_id": stage_id,
                        "bounds": [lower, upper],
                        "slot": slot,
                        "candidates": [x for x, _ in scanned],
                        "predicted_makespans": [m for _, m in scanned],
                        "pruned": len(candidates) - len(scanned) - len(rejected),
                        "pruned_by_bound": pruned_by_bound,
                        "rejected_candidates": rejected,
                        "ready_lower_bound": ready_lb,
                        "chosen_delay": best_x,
                        "best_makespan": best_obj,
                    }},
                )

    final = _evaluate(job, frozenset(), delays)

    # Optional coordinate-descent refinement (beyond the paper's
    # pseudocode): re-scan each stage's delay against the *complete*
    # schedule — no phantoms — keeping strict improvements.  Fixes the
    # greedy's path-local blind spots on wide DAGs.
    for _ in range(params.refine_passes):
        improved = False
        incumbent = final.parallel_makespan
        for path in paths:
            for stage_id in path:
                refine_lb = (
                    ready_lower_bounds(job, t_hat, delays=delays)[stage_id]
                    if use_bound
                    else 0.0
                )
                best_x = delays[stage_id]
                best_obj = incumbent
                slot = max(params.slot, max(incumbent, params.slot) / params.max_slots)
                x = 0.0
                while x < incumbent + 1e-9:
                    if abs(x - delays[stage_id]) > 1e-9:
                        if refine_lb + x + t_hat[stage_id] < best_obj:
                            trial = dict(delays)
                            trial[stage_id] = x
                            ev = _evaluate(job, frozenset(), trial)
                            if ev.parallel_makespan < best_obj - 1e-9:
                                best_obj = ev.parallel_makespan
                                best_x = x
                    x += slot
                if best_x != delays[stage_id]:
                    if tracer.enabled:
                        tracer.instant(
                            f"refine:{stage_id}",
                            _time.perf_counter() - started,
                            track=DECISIONS_TRACK,
                            cat="decision",
                            args={"job_id": job.job_id, "stage_id": stage_id,
                                  "from_delay": delays[stage_id],
                                  "to_delay": best_x, "makespan": best_obj},
                        )
                    delays[stage_id] = best_x
                    incumbent = best_obj
                    improved = True
        final = evaluate_schedule(
            job, cluster, delays, members=members, config=eval_config,
            pair_capacities=pair_capacities,
        )
        evaluations += 1
        if not improved:
            break

    fallback_applied = (
        params.fallback_to_immediate
        and final.parallel_makespan > baseline.parallel_makespan + 1e-6
    )
    if fallback_applied:
        delays = {sid: 0.0 for sid in delays}
        final = baseline
        tracer.instant(
            "fallback-to-immediate",
            _time.perf_counter() - started,
            track=DECISIONS_TRACK,
            cat="decision",
            args={"job_id": job.job_id},
        )

    tracer.counters.inc(
        "alg1.stages_delayed", sum(1 for x in delays.values() if x > 0)
    )
    if tracer.enabled and cache is not None and cache.hits:
        tracer.counters.inc("alg1.cache_hits", cache.hits)
    tracer.instant(
        "schedule",
        _time.perf_counter() - started,
        track=DECISIONS_TRACK,
        cat="decision",
        args={"job_id": job.job_id, "delays": dict(delays),
              "fallback_applied": fallback_applied,
              "predicted_makespan": final.parallel_makespan,
              "baseline_makespan": baseline.parallel_makespan,
              "evaluations": evaluations,
              "cache_hits": cache.hits if cache is not None else 0,
              "pruned_by_bound": pruned_by_bound_total,
              "order": PathOrder(params.order).value},
    )

    return DelaySchedule(
        job_id=job.job_id,
        delays=delays,
        predicted_makespan=final.parallel_makespan,
        baseline_makespan=baseline.parallel_makespan,
        paths=tuple(paths),
        standalone_times=t_hat,
        evaluations=evaluations,
        compute_seconds=_time.perf_counter() - started,
    )
