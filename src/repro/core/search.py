"""Random-search delay optimizer: a brute-force baseline for Alg. 1.

Samples random delay vectors over the parallel stages and keeps the
best one under the same fluid-model objective Algorithm 1 uses.  With
enough samples this approaches the best achievable delay schedule, so
it quantifies how much the greedy's structure (path ordering, one
stage at a time) costs — the paper's implicit claim being "very
little" (Sec. 4.1's remark that other orders also work).

This is an analysis tool, not a practical scheduler: its evaluation
budget is exponential-ish where Algorithm 1 is linear in stages.
"""

from __future__ import annotations

import time as _time

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.core.schedule import DelaySchedule
from repro.dag.graph import parallel_stage_set
from repro.dag.job import Job
from repro.dag.paths import execution_paths
from repro.model.interference import evaluate_schedule
from repro.model.perf import standalone_stage_times
from repro.simulator.simulation import SimulationConfig
from repro.util.rng import resolve_rng


def random_search_schedule(
    job: Job,
    cluster: ClusterSpec,
    samples: int = 200,
    *,
    rng: "int | np.random.Generator | None" = 0,
    sim_config: "SimulationConfig | None" = None,
) -> DelaySchedule:
    """Best-of-``samples`` random delay vectors (plus the all-zero one).

    Delays are drawn per stage from ``[0, T_max]`` with half the draws
    zeroed, biasing toward sparse schedules like those Algorithm 1
    produces.
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    gen = resolve_rng(rng)
    started = _time.perf_counter()

    members = sorted(parallel_stage_set(job))
    eval_config = sim_config or SimulationConfig(track_metrics=False)
    if not members:
        return DelaySchedule(job.job_id, {}, 0.0, 0.0, (), {}, 1,
                             _time.perf_counter() - started)

    t_hat = standalone_stage_times(job, cluster)
    paths = execution_paths(job, {sid: t_hat[sid] for sid in members})
    t_max = max(p.execution_time for p in paths)

    baseline = evaluate_schedule(
        job, cluster, {}, members=frozenset(members), config=eval_config
    )
    best_delays: dict[str, float] = {sid: 0.0 for sid in members}
    best_obj = baseline.parallel_makespan
    evaluations = 1

    for _ in range(samples):
        draw = gen.uniform(0.0, t_max, size=len(members))
        mask = gen.random(len(members)) < 0.5
        draw[mask] = 0.0
        trial = {sid: float(x) for sid, x in zip(members, draw)}
        ev = evaluate_schedule(
            job, cluster, trial, members=frozenset(members), config=eval_config
        )
        evaluations += 1
        if ev.parallel_makespan < best_obj - 1e-9:
            best_obj = ev.parallel_makespan
            best_delays = trial

    return DelaySchedule(
        job_id=job.job_id,
        delays=best_delays,
        predicted_makespan=best_obj,
        baseline_makespan=baseline.parallel_makespan,
        paths=tuple(paths),
        standalone_times=t_hat,
        evaluations=evaluations,
        compute_seconds=_time.perf_counter() - started,
    )
