"""DelayStage: the paper's contribution.

* :mod:`repro.core.delaystage` — Algorithm 1, the stage delay
  scheduling strategy.
* :mod:`repro.core.ordering` — descending / random / ascending
  execution-path orders (the paper's default and its two ablation
  variants, Sec. 4.1 / Fig. 14).
* :mod:`repro.core.calculator` — the Delay Time Calculator module of
  the prototype (Fig. 9): profiling → model parameters → Algorithm 1 →
  delay table, persisted in Spark's ``metrics.properties`` format.
* :mod:`repro.core.delayer` — the Stage Delayer module: applies the
  delay table by postponing stage submission (the prototype's
  ``stageDelayScheduling()`` hook in ``DAGScheduler``).

Beyond the paper: :mod:`repro.core.bounds` (provable makespan lower
bounds and optimality gaps), :mod:`repro.core.search` (random-search
baseline for greedy-quality analysis), and :mod:`repro.core.heuristics`
(an O(|K|) analytic planner for latency-critical scheduling).
"""

from repro.core.bounds import MakespanBounds, makespan_bounds, optimality_gap
from repro.core.heuristics import staggered_read_schedule
from repro.core.ordering import PathOrder, order_paths
from repro.core.search import random_search_schedule
from repro.core.schedule import DelaySchedule
from repro.core.delaystage import DelayStageParams, delay_stage_schedule
from repro.core.calculator import DelayTimeCalculator
from repro.core.delayer import ReplanningStageDelayer, StageDelayer
from repro.core.properties import read_metrics_properties, write_metrics_properties
from repro.core.replan import replan_delays

__all__ = [
    "PathOrder",
    "order_paths",
    "DelaySchedule",
    "DelayStageParams",
    "delay_stage_schedule",
    "DelayTimeCalculator",
    "StageDelayer",
    "ReplanningStageDelayer",
    "replan_delays",
    "write_metrics_properties",
    "read_metrics_properties",
    "MakespanBounds",
    "makespan_bounds",
    "optimality_gap",
    "random_search_schedule",
    "staggered_read_schedule",
]
