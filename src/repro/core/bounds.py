"""Lower bounds on the parallel-stage makespan.

Sec. 3.2 shows the scheduling problem is (at least) NP-hard in
general, so the paper evaluates Algorithm 1 empirically.  These bounds
quantify how much room *any* schedule has, making the greedy's
optimality gap measurable:

* **Critical-path bound** — the longest execution path's standalone
  time: no delay schedule can finish the parallel set before its
  longest chain runs uncontended.
* **Resource bounds** — total work divided by cluster capacity, per
  resource: CPU work (executor-seconds), storage egress for root
  reads, aggregate NIC for shuffle volume, disk for writes.  A
  work-conserving schedule cannot beat any of them.

``makespan_lower_bound`` is their maximum; the optimality-gap of a
schedule is ``predicted_makespan / bound - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.cluster.spec import ClusterSpec
from repro.dag.graph import parallel_stage_set, topological_order
from repro.dag.job import Job
from repro.dag.paths import execution_paths
from repro.model.perf import standalone_stage_times


@dataclass(frozen=True)
class MakespanBounds:
    """The individual lower bounds (seconds) and their maximum."""

    critical_path: float
    cpu_work: float
    storage_egress: float
    network_volume: float
    disk_volume: float

    @property
    def bound(self) -> float:
        return max(
            self.critical_path,
            self.cpu_work,
            self.storage_egress,
            self.network_volume,
            self.disk_volume,
        )

    @property
    def binding(self) -> str:
        """Name of the binding (largest) bound."""
        values = {
            "critical_path": self.critical_path,
            "cpu_work": self.cpu_work,
            "storage_egress": self.storage_egress,
            "network_volume": self.network_volume,
            "disk_volume": self.disk_volume,
        }
        return max(values, key=values.get)


def makespan_bounds(job: Job, cluster: ClusterSpec) -> MakespanBounds:
    """Lower bounds on the makespan of the job's parallel-stage set."""
    members = parallel_stage_set(job)
    if not members:
        return MakespanBounds(0.0, 0.0, 0.0, 0.0, 0.0)

    t_hat = standalone_stage_times(job, cluster)
    paths = execution_paths(job, {sid: t_hat[sid] for sid in members})
    critical = max(p.execution_time for p in paths)

    workers = cluster.worker_ids
    total_executors = sum(cluster.node(w).executors for w in workers)
    cpu_work = sum(
        job.stage(sid).input_bytes / job.stage(sid).process_rate for sid in members
    ) / max(total_executors, 1)

    storage = cluster.storage_ids
    storage_egress_cap = sum(cluster.node(s).nic_bandwidth for s in storage)
    root_volume = sum(
        job.stage(sid).input_bytes
        for sid in members
        if not job.parents(sid)
    )
    storage_bound = root_volume / storage_egress_cap if storage else 0.0

    # Shuffle traffic crosses worker NICs; the remote fraction of each
    # non-root member's input must traverse aggregate worker ingress.
    n_w = len(workers)
    shuffle_volume = sum(
        job.stage(sid).input_bytes * (n_w - 1) / n_w
        for sid in members
        if job.parents(sid)
    )
    ingress_cap = sum(cluster.node(w).nic_bandwidth for w in workers)
    network_bound = shuffle_volume / ingress_cap if ingress_cap else 0.0

    disk_volume = sum(job.stage(sid).output_bytes for sid in members)
    disk_cap = sum(cluster.node(w).disk_bandwidth for w in workers)
    disk_bound = disk_volume / disk_cap if disk_cap else 0.0

    return MakespanBounds(
        critical_path=critical,
        cpu_work=cpu_work,
        storage_egress=storage_bound,
        network_volume=network_bound,
        disk_volume=disk_bound,
    )


def ready_lower_bounds(
    job: Job,
    standalone_times: "Mapping[str, float]",
    *,
    members: "Iterable[str] | None" = None,
    visible: "Iterable[str] | None" = None,
    delays: "Mapping[str, float] | None" = None,
) -> dict[str, float]:
    """Admissible lower bound on each stage's ready time.

    In the fluid model a stage's duration is at least its standalone
    time ``t_hat`` — interference and contention penalties only slow
    stages down — so the earliest a stage can become ready is the
    longest chain of (ancestor delay + ancestor standalone time) above
    it.  Algorithm 1's scan uses this as an admissible heuristic: a
    candidate delay ``x`` for stage ``k`` cannot beat an incumbent
    makespan below ``ready_lb[k] + x + t_hat[k]``, so such candidates
    are pruned without paying for a fluid evaluation.

    ``visible``/``members`` mirror the scan's greedy visibility: members
    of the parallel set outside ``visible`` are the scan's zero-volume
    phantoms and contribute zero duration (and no delay) to the bound,
    keeping it admissible for the *phantom* model the scan actually
    evaluates.  ``delays`` are the already-fixed submission delays.
    """
    delays = delays or {}
    member_set = frozenset(members) if members is not None else frozenset()
    visible_set = frozenset(visible) if visible is not None else None
    lb: dict[str, float] = {}
    for sid in topological_order(job):
        ready = 0.0
        for parent in job.parents(sid):
            if (
                visible_set is not None
                and parent in member_set
                and parent not in visible_set
            ):
                duration = 0.0  # phantom: no resources, no delay
            else:
                duration = standalone_times[parent]
            finish = lb[parent] + delays.get(parent, 0.0) + duration
            if finish > ready:
                ready = finish
        lb[sid] = ready
    return lb


def optimality_gap(predicted_makespan: float, bounds: MakespanBounds) -> float:
    """Fractional distance of a schedule's makespan above the bound.

    0 means provably optimal (under the fluid model); the bound itself
    may be loose, so the gap is an upper estimate of suboptimality.
    """
    if bounds.bound <= 0:
        return 0.0
    return predicted_makespan / bounds.bound - 1.0
