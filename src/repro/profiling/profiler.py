"""Sampled single-executor profiling runs.

``profile_job`` executes a scaled copy of the job on a one-worker,
one-executor profiling cluster (as the paper's iSpot-based profiling
does) and extracts per-stage parameter *estimates* from the resulting
event records.  Estimates are scaled back to full size and perturbed
with multiplicative lognormal noise to model sampling and log-parsing
error; the downstream schedule-quality sensitivity to this noise is an
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.spec import ClusterSpec, NodeSpec
from repro.dag.job import Job
from repro.dag.stage import Stage
from repro.simulator.simulation import SimulationConfig, simulate_job
from repro.util.rng import resolve_rng
from repro.util.units import mbps_to_bytes_per_sec, MB
from repro.util.validation import check_in_range, check_non_negative


@dataclass(frozen=True)
class StageEstimate:
    """Profiled parameters for one stage (scaled to full input size)."""

    stage_id: str
    input_bytes: float
    output_bytes: float
    process_rate: float
    num_tasks: int
    task_cv: float


@dataclass(frozen=True)
class ProfileReport:
    """Everything profiling learned about a job.

    Attributes
    ----------
    estimates:
        Per-stage parameter estimates.
    edges:
        The job's DAG as recovered from the event log (stage submission
        order plus parent links — recovered exactly, as in Spark's
        event log the DAG is explicit).
    profiling_seconds:
        Simulated wall-clock duration of the profiling run, the
        profiling overhead reported in Sec. 5.4.
    sample_fraction:
        Input-data fraction the profile ran on.
    """

    job_id: str
    estimates: dict[str, StageEstimate]
    edges: tuple[tuple[str, str], ...]
    profiling_seconds: float
    sample_fraction: float

    def to_model_job(self) -> Job:
        """Build the model job Algorithm 1 plans against."""
        stages = [
            Stage(
                stage_id=e.stage_id,
                input_bytes=e.input_bytes,
                output_bytes=e.output_bytes,
                process_rate=e.process_rate,
                num_tasks=e.num_tasks,
                task_cv=e.task_cv,
            )
            for e in self.estimates.values()
        ]
        return Job(self.job_id, stages, list(self.edges))


def _profiling_cluster(cluster: ClusterSpec) -> ClusterSpec:
    """One worker with a single executor, plus the storage nodes.

    Mirrors "sample the input data and profile the job on a single
    executor" — the worker inherits a representative NIC/disk from the
    target cluster so observed rates transfer.
    """
    first_worker = cluster.node(cluster.worker_ids[0])
    nodes = [
        NodeSpec(
            node_id="prof0",
            executors=1,
            nic_bandwidth=first_worker.nic_bandwidth,
            disk_bandwidth=first_worker.disk_bandwidth,
        )
    ]
    for sid in cluster.storage_ids:
        nodes.append(cluster.node(sid))
    if len(nodes) == 1:
        # No storage tier: give the profiler a data node so source
        # stages still exercise the network path.
        nodes.append(
            NodeSpec(
                node_id="profdata",
                executors=0,
                nic_bandwidth=mbps_to_bytes_per_sec(1000.0),
                disk_bandwidth=150 * MB,
                is_storage=True,
            )
        )
    return ClusterSpec(nodes)


def profile_job(
    job: Job,
    cluster: ClusterSpec,
    sample_fraction: float = 0.1,
    noise: float = 0.03,
    rng: "int | np.random.Generator | None" = None,
) -> ProfileReport:
    """Profile ``job`` on sampled data and return parameter estimates.

    Parameters
    ----------
    sample_fraction:
        Fraction of the input data the profiling run processes
        (paper default 10 %).
    noise:
        Sigma of the multiplicative lognormal observation noise applied
        to volumes and rates (0 = oracle profiling).
    """
    check_in_range(sample_fraction, "sample_fraction", 1e-6, 1.0)
    check_non_negative(noise, "noise")
    gen = resolve_rng(rng)

    sampled = job.scaled(sample_fraction, job_id=job.job_id)
    prof_cluster = _profiling_cluster(cluster)

    # Profile stage by stage: on a single executor core only one task
    # runs at a time, so per-task timings in the event log are free of
    # cross-stage contention — equivalent to observing each stage in
    # isolation, which is how iSpot extracts the processing rate R_k.
    estimates: dict[str, StageEstimate] = {}
    profiling_seconds = 0.0
    for sid in job.stage_ids:
        stage = sampled.stage(sid)
        solo = Job(f"profile-{sid}", [stage])
        result = simulate_job(
            solo, prof_cluster, config=SimulationConfig(track_metrics=False)
        )
        rec = result.stage(solo.job_id, sid)
        profiling_seconds += rec.duration
        observed_rate = (
            stage.input_bytes / rec.compute_time
            if rec.compute_time > 0
            else stage.process_rate
        )

        def jitter() -> float:
            return float(gen.lognormal(mean=0.0, sigma=noise)) if noise > 0 else 1.0

        true = job.stage(sid)
        estimates[sid] = StageEstimate(
            stage_id=sid,
            input_bytes=stage.input_bytes / sample_fraction * jitter(),
            output_bytes=stage.output_bytes / sample_fraction * jitter(),
            process_rate=observed_rate * jitter(),
            num_tasks=true.num_tasks,
            task_cv=true.task_cv,
        )

    return ProfileReport(
        job_id=job.job_id,
        estimates=estimates,
        edges=tuple(job.edges),
        profiling_seconds=profiling_seconds,
        sample_fraction=sample_fraction,
    )
