"""Self-profiling: cProfile hotspot capture for the bench harness.

The other modules in this package profile *simulated jobs* (the paper's
Sec. 4.2 pipeline); this one profiles *the reproduction itself*.
``repro bench --profile`` runs each benchmark under :mod:`cProfile` and
writes a pstats top-N table per bench as a CI artifact, so future perf
work starts from measured hotspots instead of guesses.

Profiled wall times are **not comparable** to unprofiled ones — the
tracer taxes every Python function call while leaving time spent inside
numpy kernels untouched, which systematically inflates object-loop code
relative to array code.  The harness therefore never writes
``BENCH_*.json`` from a profiled run; the artifact is the hotspot
table, nothing else.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass
from typing import Callable, TypeVar

T = TypeVar("T")

#: Rows shown in a hotspot table by default.
DEFAULT_TOP = 25


@dataclass(frozen=True)
class HotspotReport:
    """Top-N hotspot table from one profiled run."""

    name: str
    top: int
    total_calls: int
    total_seconds: float
    #: ``pstats`` table sorted by cumulative time, then by internal time
    #: (two views of the same profile; rendered one after the other).
    text: str

    def summary(self) -> str:
        return (
            f"{self.name}: {self.total_calls} calls, "
            f"{self.total_seconds:.3f}s profiled"
        )


def capture_hotspots(
    fn: "Callable[[], T]", name: str, top: int = DEFAULT_TOP
) -> "tuple[T, HotspotReport]":
    """Run ``fn`` under cProfile; return its result and the hotspot table."""
    profile = cProfile.Profile()
    result = profile.runcall(fn)
    buffer = io.StringIO()
    stats = pstats.Stats(profile, stream=buffer)
    for sort in ("cumulative", "tottime"):
        buffer.write(f"--- top {top} by {sort} ---\n")
        stats.sort_stats(sort).print_stats(top)
    report = HotspotReport(
        name=name,
        top=top,
        total_calls=int(stats.total_calls),
        total_seconds=float(stats.total_tt),
        text=buffer.getvalue(),
    )
    return result, report
