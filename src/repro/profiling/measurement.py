"""Cluster bandwidth measurement with observation noise.

The prototype measures available network and disk bandwidth
periodically with ``netperf`` and ``iotop``.  Against a simulated
cluster the "measurement" is the spec itself; ``measure_cluster``
returns a perturbed copy modeling measurement error, so the planner
sees slightly wrong ``B^{i,w}`` / ``D^w`` exactly as the prototype
would.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.util.rng import resolve_rng
from repro.util.validation import check_non_negative


def measure_cluster(
    cluster: ClusterSpec,
    noise: float = 0.03,
    rng: "int | np.random.Generator | None" = None,
    homogenize: bool = False,
) -> ClusterSpec:
    """Return the cluster spec as the measurement tools would report it.

    Each node's NIC and disk bandwidth is scaled by a lognormal factor
    with sigma ``noise``; executor counts and topology are observed
    exactly.

    Parameters
    ----------
    homogenize:
        ``False`` (default) draws an independent factor per node —
        what repeated per-node ``netperf`` runs would report.  ``True``
        applies one common factor per resource, modeling a scalar
        calibration error: the prototype's calculator consumes scalar
        bandwidth parameters, and a homogeneous model cluster keeps the
        planner's fluid evaluations on the fast symmetric path.
    """
    check_non_negative(noise, "noise")
    if noise == 0:
        return cluster
    gen = resolve_rng(rng)
    if homogenize:
        nic_factor = float(gen.lognormal(0.0, noise))
        disk_factor = float(gen.lognormal(0.0, noise))
        nodes = [
            replace(
                n,
                nic_bandwidth=n.nic_bandwidth * nic_factor,
                disk_bandwidth=n.disk_bandwidth * disk_factor,
            )
            for n in cluster.nodes
        ]
    else:
        nodes = [
            replace(
                n,
                nic_bandwidth=n.nic_bandwidth * float(gen.lognormal(0.0, noise)),
                disk_bandwidth=n.disk_bandwidth * float(gen.lognormal(0.0, noise)),
            )
            for n in cluster.nodes
        ]
    return ClusterSpec(nodes)
