"""Job profiling and cluster measurement (paper Sec. 4.2).

The prototype obtains Algorithm 1's inputs by (a) running the job on a
~10 % sample of its input data on a single executor and parsing the
Spark event log for the DAG, the shuffle volumes ``s``/``d``, and the
data-processing rate ``R_k``; and (b) periodically measuring network
and disk bandwidth with ``netperf``/``iotop``.  Both paths are
reproduced here against the simulator: the profiling run is a real
(simulated) execution of the sampled job, and measurement returns the
cluster spec with configurable observation noise — the source of the
model error quantified in Appendix A.2.
"""

from repro.profiling.profiler import ProfileReport, profile_job
from repro.profiling.measurement import measure_cluster
from repro.profiling.hotspots import HotspotReport, capture_hotspots

__all__ = [
    "ProfileReport",
    "profile_job",
    "measure_cluster",
    "HotspotReport",
    "capture_hotspots",
]
