"""Observability: span tracing, decision audit, and run telemetry.

The paper's argument is entirely about *where time goes inside a
stage* (Eq. (1)–(3) split each stage into shuffle-read, compute, and
disk-write phases) and *why Algorithm 1 picked each delay* (the
candidate scan of Sec. 4.1).  This package makes both inspectable
after a run:

* :mod:`repro.obs.tracer` — a low-overhead span tracer with explicit
  (simulation-clock) timestamps, a null implementation for the off
  state, and a counters/gauges registry.
* :mod:`repro.obs.manifest` — run manifests (seeds, config hash,
  package versions, workload fingerprints) attached to every export.
* :mod:`repro.obs.export` — Chrome trace-event JSON loadable in
  Perfetto / ``chrome://tracing``, JSON-lines span dumps, and the
  schema validator CI runs against emitted traces.
* :mod:`repro.obs.inspect` — offline span-tree / decision-audit
  summaries (the ``repro inspect`` subcommand).
* :mod:`repro.obs.metrics` — aggregate interleaving analytics (stage
  overlap, CPU/network complementarity, delay-wait shares, utilization
  bands) with markdown / OpenMetrics / CSV exporters (``repro
  report``).
* :mod:`repro.obs.critical` — critical-path extraction with an exact
  (bit-for-bit) per-category blame decomposition of every JCT and the
  makespan, plus cross-run diffing (``repro why``).
* :mod:`repro.obs.progress` — the throttled stderr heartbeat behind
  the ``--progress`` flag (a renderer over the live bus).
* :mod:`repro.obs.live` — the live telemetry plane: thread-safe
  metrics registry, run-event bus, OpenMetrics HTTP server
  (``--serve``), streaming ``/events``, structured JSON logs, and the
  ``repro tail`` client.

The simulator emits one span per stage with ``delay-wait`` /
``shuffle-read`` / ``compute`` / ``disk-write`` phase children;
Algorithm 1 emits one decision-audit span per scanned stage recording
the scan bounds, every candidate delay evaluated with its predicted
makespan, and the chosen delay — enough to replay the algorithm's
reasoning offline.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    CounterRegistry,
    CounterSample,
    Instant,
    NullTracer,
    Span,
    Tracer,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    build_manifest,
    canonical_json,
    config_hash,
    workload_fingerprint,
)
from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    read_chrome_trace,
    read_spans_jsonl,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.inspect import (
    counter_track_summary,
    decision_audits,
    delay_tables,
    render_counter_summary,
    render_summary,
    span_nodes,
)
from repro.obs.metrics import (
    DEFAULT_BAND_EDGES,
    InterleavingReport,
    PathDelayShare,
    UtilizationBands,
    band_fractions,
    fraction_below,
    interleaving_report,
    render_markdown_report,
    reports_to_csv,
    reports_to_openmetrics,
)
from repro.obs.critical import (
    CATEGORIES,
    BlameDiff,
    JobBlame,
    RunBlame,
    StageBlame,
    blame_diff,
    blames_to_openmetrics_lines,
    render_blame_markdown,
    render_diff_markdown,
    run_blame,
    validate_blame_payload,
)
from repro.obs.progress import ProgressReporter
from repro.obs.live import (
    LiveHub,
    LiveServer,
    MetricsRegistry,
    StructuredLogger,
    TelemetryBus,
    TelemetryPublisher,
    validate_openmetrics_text,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Instant",
    "CounterSample",
    "CounterRegistry",
    "RunManifest",
    "build_manifest",
    "canonical_json",
    "config_hash",
    "workload_fingerprint",
    "MANIFEST_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "to_chrome_trace",
    "write_chrome_trace",
    "read_chrome_trace",
    "validate_chrome_trace",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "span_nodes",
    "decision_audits",
    "delay_tables",
    "render_summary",
    "counter_track_summary",
    "render_counter_summary",
    "DEFAULT_BAND_EDGES",
    "UtilizationBands",
    "PathDelayShare",
    "InterleavingReport",
    "band_fractions",
    "fraction_below",
    "interleaving_report",
    "render_markdown_report",
    "reports_to_csv",
    "reports_to_openmetrics",
    "CATEGORIES",
    "StageBlame",
    "JobBlame",
    "RunBlame",
    "BlameDiff",
    "run_blame",
    "blame_diff",
    "render_blame_markdown",
    "render_diff_markdown",
    "blames_to_openmetrics_lines",
    "validate_blame_payload",
    "ProgressReporter",
    "TelemetryBus",
    "TelemetryPublisher",
    "LiveHub",
    "LiveServer",
    "MetricsRegistry",
    "StructuredLogger",
    "validate_openmetrics_text",
]
