"""Critical-path extraction and exact makespan/JCT blame attribution.

The reports of :mod:`repro.obs.metrics` show *that* a run got faster;
this module shows *where the time went*.  For every finished job it
walks the stage records backwards from the last completion — the same
data the span emitter reads — producing the chain of stages whose
phases determined the job's completion time, then attributes every
second of that chain to exactly one blame category:

``compute``
    Contention-free processing time: the part's compute volume over the
    rate the fair-share allocator would grant a stage alone on the node
    (``executors * R_k`` — the single-stage fast path of
    :func:`repro.simulator.fairshare.compute_shares`).
``network``
    Contention-free shuffle-read time: the stage's own flow set
    water-filled alone on the healthy topology (the identical
    :func:`~repro.simulator.fairshare.maxmin_rates_seq` solver the
    engine uses), cascaded through completions.
``disk``
    Contention-free shuffle-write time (full node disk bandwidth — the
    single-writer path of :func:`~repro.simulator.fairshare.disk_shares`).
``delay_wait``
    Deliberate submission postponement (Algorithm 1's delays; in fault
    mode also injector-imposed submission gating).
``contention``
    Wanted-rate minus granted-rate time: the measured phase duration in
    excess of its alone-on-the-cluster baseline — time lost to sharing
    resources with concurrent stages (and, after a degradation event,
    to the reduced capacity itself).
``fault_retry``
    The same excess, for stages that burned retries: redone partitions,
    backoff, and recovery time (requires a fault-mode run).
``dependency``
    Time waiting on upstream completions that is not covered by a
    parent on the critical chain — the job-submission offset for root
    stages and any inter-stage hand-off gap (exactly zero in healthy
    runs, where a child becomes ready at the instant its last parent
    finishes).

**Exactness invariant.**  Durations are accumulated as
:class:`fractions.Fraction` values of the float timestamps, so the
telescoping interval sums cancel in exact rational arithmetic: per job
the categories sum to ``Fraction(finish) - Fraction(submit)``, whose
float value equals the measured JCT *bit-for-bit* (IEEE subtraction and
``Fraction.__float__`` are both correctly rounded).  The baselines are
clamped into the measured span in the same exact arithmetic, so no
rounding ever leaks into the identity.  ``RunBlame.identity_exact`` /
``JobBlame.identity_exact`` report the invariant; the test suite
asserts it over random DAGs and fault-injected runs.

Everything here runs *after* the simulation from the result object and
the :class:`~repro.simulator.simulation.StageDemand` accounting the
simulator assembles post-run — the engine's hot loop is untouched, so
enabling blame analysis leaves results, event-log bytes, and traces
bit-identical.

Import discipline: like :mod:`repro.obs.metrics`, this module is
reachable from ``repro.obs.__init__`` which the simulator imports, so
at module level it depends only on the standard library; simulator
imports happen lazily inside the builders.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.spec import ClusterSpec
    from repro.dag.job import Job
    from repro.simulator.simulation import (
        SimulationResult,
        StageDemand,
        StageRecord,
    )

#: Blame categories, in rendering order.  Every critical-path second
#: lands in exactly one of these.
CATEGORIES: "tuple[str, ...]" = (
    "compute",
    "network",
    "disk",
    "delay_wait",
    "contention",
    "fault_retry",
    "dependency",
)

#: Categories counted as *execution* time by :func:`blame_diff`'s
#: recovery metric — the serial/contended time a better schedule can
#: convert into overlap (``delay_wait`` is excluded: it is the price
#: paid, not the time recovered).
EXECUTION_CATEGORIES: "tuple[str, ...]" = (
    "compute", "network", "disk", "contention", "fault_retry", "dependency",
)

#: Relative completion threshold for the alone-read cascade; mirrors
#: :attr:`repro.simulator.engine.FluidEngine.EPS`.
_EPS = 1e-9


# --------------------------------------------------------------------- #
# result dataclasses


@dataclass(frozen=True)
class StageBlame:
    """One stage's contribution to its job's critical path."""

    job_id: str
    stage_id: str
    #: Critical-chain span covered by this stage: ``ready_time`` (plus
    #: any dependency gap before it) through ``finish_time``.
    start: float
    finish: float
    #: Per-category seconds (floats rounded from the exact fractions).
    seconds: "dict[str, float]"
    #: Algorithm 1's chosen delay for this stage (decision-audit
    #: cross-link); ``None`` when the run had no delay table.
    chosen_delay: "float | None" = None
    #: Fault-mode retries charged to this stage.
    retries: int = 0

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "stage_id": self.stage_id,
            "start": float(self.start),
            "finish": float(self.finish),
            "seconds": {k: float(v) for k, v in self.seconds.items()},
            "chosen_delay": (
                None if self.chosen_delay is None else float(self.chosen_delay)
            ),
            "retries": int(self.retries),
        }


@dataclass(frozen=True)
class JobBlame:
    """Exact blame decomposition of one job's completion time."""

    job_id: str
    #: Measured JCT (``finish_time - submit_time``).
    jct_seconds: float
    #: Per-category seconds; ``float`` roundings of the exact sums.
    categories: "dict[str, float]"
    #: Critical chain, root first.
    stages: "tuple[StageBlame, ...]"
    #: Exact per-category sums (internal; drives the identity check).
    exact: "dict[str, Fraction]" = field(repr=False, compare=False, default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Float value of the *exact* category sum."""
        return float(sum(self.exact.values(), Fraction(0)))

    @property
    def identity_exact(self) -> bool:
        """Categories sum to the measured JCT bit-for-bit."""
        return self.total_seconds == self.jct_seconds

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "jct_seconds": float(self.jct_seconds),
            "total_seconds": self.total_seconds,
            "identity_exact": self.identity_exact,
            "categories": {k: float(v) for k, v in self.categories.items()},
            "stages": [s.to_dict() for s in self.stages],
        }


@dataclass(frozen=True)
class RunBlame:
    """Blame decomposition for a whole run (all jobs + the makespan)."""

    label: str
    #: Measured makespan (finish time of the last job).
    makespan_seconds: float
    #: Job whose completion set the makespan.
    makespan_job: str
    #: Per-category seconds along the makespan-setting path (the
    #: makespan job's categories, plus its submission offset under
    #: ``dependency``).
    categories: "dict[str, float]"
    jobs: "dict[str, JobBlame]"
    #: Exact makespan category sums (internal).
    exact: "dict[str, Fraction]" = field(repr=False, compare=False, default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.exact.values(), Fraction(0)))

    @property
    def identity_exact(self) -> bool:
        """Makespan categories sum to the measured makespan bit-for-bit
        — and every job's identity holds too."""
        return self.total_seconds == self.makespan_seconds and all(
            j.identity_exact for j in self.jobs.values()
        )

    def top_jobs(self, k: int = 5) -> "list[tuple[str, float]]":
        """The ``k`` largest jobs by critical-path (completion) time."""
        ranked = sorted(
            ((j.jct_seconds, jid) for jid, j in self.jobs.items()),
            key=lambda t: (-t[0], t[1]),
        )
        return [(jid, jct) for jct, jid in ranked[:k]]

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "makespan_seconds": float(self.makespan_seconds),
            "makespan_job": self.makespan_job,
            "total_seconds": self.total_seconds,
            "identity_exact": self.identity_exact,
            "categories": {k: float(v) for k, v in self.categories.items()},
            "jobs": {jid: j.to_dict() for jid, j in self.jobs.items()},
        }


@dataclass(frozen=True)
class BlameDiff:
    """Per-category comparison of two runs' blame decompositions."""

    baseline: str
    candidate: str
    makespan_baseline: float
    makespan_candidate: float
    #: Seconds saved per category (baseline minus candidate; positive
    #: means the candidate spent less time there).
    saved: "dict[str, float]"

    @property
    def makespan_saved(self) -> float:
        return self.makespan_baseline - self.makespan_candidate

    @property
    def recovery_seconds(self) -> float:
        """Execution time the candidate recovered: positive savings over
        the non-delay categories (compute/network/disk/contention/
        fault-retry/dependency).  The paper's "serial time converted
        into overlap" reads directly off this number."""
        return sum(max(self.saved[c], 0.0) for c in EXECUTION_CATEGORIES)

    @property
    def delay_invested(self) -> float:
        """Extra deliberate delay the candidate paid (negative savings
        on ``delay_wait``)."""
        return max(-self.saved["delay_wait"], 0.0)

    def to_dict(self) -> dict:
        return {
            "baseline": self.baseline,
            "candidate": self.candidate,
            "makespan_baseline": float(self.makespan_baseline),
            "makespan_candidate": float(self.makespan_candidate),
            "makespan_saved": float(self.makespan_saved),
            "recovery_seconds": float(self.recovery_seconds),
            "delay_invested": float(self.delay_invested),
            "saved": {k: float(v) for k, v in self.saved.items()},
        }


# --------------------------------------------------------------------- #
# alone-on-the-cluster phase baselines (the allocator's wanted rates)


def _alone_read_seconds(
    flow_spec: "Iterable[tuple[str, str, float]]", cluster: "ClusterSpec"
) -> float:
    """Stage-alone shuffle-read duration from the allocator itself.

    Builds the stage's own flow set and water-fills it on the healthy
    topology with the engine's exact solver, cascading through flow
    completions: after each completion the surviving flows are
    re-solved, exactly as the fluid engine would with the stage alone
    on the cluster.  The result is the read phase's contention-free
    ("wanted-rate") duration.
    """
    from repro.cluster.topology import Topology
    from repro.simulator.fairshare import maxmin_rates_seq
    from repro.simulator.flows import NetworkFlow

    flows = [
        NetworkFlow(src=src, dst=dst, volume=vol, stage_key=("_alone", "read"))
        for src, dst, vol in flow_spec
        if vol > 0.0 and src != dst
    ]
    if not flows:
        return 0.0
    topology = Topology(cluster)
    elapsed = 0.0
    # Each iteration completes at least one flow, so the loop is bounded
    # by the flow count; the +1 guard catches a zero-rate stall.
    for _ in range(len(flows) + 1):
        if not flows:
            return elapsed
        rates = maxmin_rates_seq(flows, topology)
        for f, r in zip(flows, rates):
            f.rate = float(r)
        dt = math.inf
        for f in flows:
            if f.rate > 0.0:
                t = f.remaining / f.rate
                if t < dt:
                    dt = t
        if not math.isfinite(dt):  # pragma: no cover - defensive
            return elapsed
        elapsed += dt
        survivors = []
        for f in flows:
            rem = f.remaining - f.rate * dt
            f.remaining = rem if rem > 0.0 else 0.0
            if f.remaining > _EPS * max(f.rate, 1.0):
                survivors.append(f)
        flows = survivors
    return elapsed  # pragma: no cover - loop bound is exact


def _phase_baselines(
    demand: "StageDemand", stage, cluster: "ClusterSpec"
) -> "tuple[float, float, float]":
    """(read, compute, write) contention-free seconds for one stage.

    Wanted rates follow the fair-share allocator's alone-on-the-resource
    fast paths: a single stage computing on a node owns every executor
    (``rate = executors * R_k``), a single writer owns the disk
    (``rate = disk_bandwidth``), and a stage's flows alone on the
    network water-fill to their NIC-limited rates.  The slowest worker
    bounds each phase, mirroring Eq. (2).
    """
    flow_spec = [
        (src, w, demand.read_volumes[w] / len(srcs))
        for w, srcs in demand.remote_sources.items()
        if srcs and demand.read_volumes.get(w, 0.0) > 0.0
        for src in srcs
    ]
    read = _alone_read_seconds(flow_spec, cluster)

    compute = 0.0
    write = 0.0
    for w in demand.read_volumes:
        node = cluster.node(w)
        if demand.compute_volume > 0.0 and node.executors > 0:
            t = demand.compute_volume / (node.executors * stage.process_rate)
            if t > compute:
                compute = t
        if demand.write_volume > 0.0 and node.disk_bandwidth > 0:
            t = demand.write_volume / node.disk_bandwidth
            if t > write:
                write = t
    return read, compute, write


# --------------------------------------------------------------------- #
# critical-path walk


def _finite(x: float) -> bool:
    return isinstance(x, float) and math.isfinite(x) or isinstance(x, int)


def _critical_parent(
    rec: "StageRecord",
    parents: "Sequence[str]",
    records: "Mapping[tuple[str, str], StageRecord]",
) -> "StageRecord | None":
    """The parent whose completion gated ``rec`` becoming ready.

    Healthy runs: a child becomes ready at the exact engine instant its
    last parent finishes, so the last-finishing parent's ``finish_time``
    equals ``rec.ready_time`` bit-for-bit.  Fault-mode re-gating keeps
    the invariant for the *final* recorded times; parents that finished
    after the child's (re-)ready instant are never on its chain, so
    candidates are restricted to ``finish_time <= ready_time``.  Ties
    break on stage id for determinism.
    """
    best: "StageRecord | None" = None
    for pid in parents:
        prec = records.get((rec.job_id, pid))
        if prec is None or not math.isfinite(prec.finish_time):
            continue
        if prec.finish_time > rec.ready_time:
            continue
        if (
            best is None
            or prec.finish_time > best.finish_time
            or (prec.finish_time == best.finish_time
                and prec.stage_id < best.stage_id)
        ):
            best = prec
    return best


def _job_blame(
    result: "SimulationResult",
    job: "Job",
    delays: "Mapping[str, float] | None",
) -> "JobBlame | None":
    jrec = result.job_records.get(job.job_id)
    if jrec is None or not math.isfinite(jrec.finish_time):
        return None  # job failed / never finished: no completion to blame

    records = result.stage_records
    demands = result.demands or {}
    finished = [
        rec
        for (jid, _sid), rec in records.items()
        if jid == job.job_id and math.isfinite(rec.finish_time)
    ]
    if not finished:
        return None

    totals: "dict[str, Fraction]" = {c: Fraction(0) for c in CATEGORIES}
    stages: "list[StageBlame]" = []

    # Last completion first; ties break on stage id for determinism.
    current = max(finished, key=lambda r: (r.finish_time, r.stage_id))
    # The job record's finish is stamped at the same engine instant as
    # its last stage completion; any (pathological) residue is waiting,
    # not execution.
    totals["dependency"] += Fraction(jrec.finish_time) - Fraction(
        current.finish_time
    )

    seen: "set[str]" = set()
    while current is not None and current.stage_id not in seen:
        seen.add(current.stage_id)
        rec = current
        key = (rec.job_id, rec.stage_id)
        demand = demands.get(key)
        stage_exact: "dict[str, Fraction]" = {c: Fraction(0) for c in CATEGORIES}

        read_span = Fraction(rec.read_done_time) - Fraction(rec.submit_time)
        compute_span = Fraction(rec.compute_done_time) - Fraction(
            rec.read_done_time
        )
        write_span = Fraction(rec.finish_time) - Fraction(rec.compute_done_time)
        delay_span = Fraction(rec.submit_time) - Fraction(rec.ready_time)

        if demand is not None:
            job_obj = job  # stage parameters for the wanted compute rate
            read_ideal, compute_ideal, write_ideal = _phase_baselines(
                demand, job_obj.stage(rec.stage_id), result.cluster
            )
            # Clamp the baseline into the measured span in exact
            # arithmetic, so base + excess == span identically.
            read_base = min(Fraction(read_ideal), read_span)
            compute_base = min(Fraction(compute_ideal), compute_span)
            write_base = min(Fraction(write_ideal), write_span)
            excess = (
                (read_span - read_base)
                + (compute_span - compute_base)
                + (write_span - write_base)
            )
            excess_cat = "fault_retry" if demand.retries > 0 else "contention"
            stage_exact["network"] += read_base
            stage_exact["compute"] += compute_base
            stage_exact["disk"] += write_base
            stage_exact[excess_cat] += excess
        else:
            # No demand accounting (e.g. loaded from a stripped result):
            # whole phases land on their nominal categories.
            stage_exact["network"] += read_span
            stage_exact["compute"] += compute_span
            stage_exact["disk"] += write_span
        stage_exact["delay_wait"] += delay_span

        parent = _critical_parent(rec, job.parents(rec.stage_id), records)
        if parent is not None:
            gap = Fraction(rec.ready_time) - Fraction(parent.finish_time)
        else:
            gap = Fraction(rec.ready_time) - Fraction(jrec.submit_time)
        stage_exact["dependency"] += gap

        for c, v in stage_exact.items():
            totals[c] += v
        stages.append(
            StageBlame(
                job_id=rec.job_id,
                stage_id=rec.stage_id,
                start=rec.ready_time,
                finish=rec.finish_time,
                seconds={c: float(v) for c, v in stage_exact.items()},
                chosen_delay=(
                    None if delays is None else delays.get(rec.stage_id)
                ),
                retries=demand.retries if demand is not None else 0,
            )
        )
        current = parent

    stages.reverse()
    return JobBlame(
        job_id=job.job_id,
        jct_seconds=jrec.completion_time,
        categories={c: float(v) for c, v in totals.items()},
        stages=tuple(stages),
        exact=totals,
    )


def run_blame(
    result: "SimulationResult",
    jobs: "Job | Iterable[Job]",
    *,
    label: str = "run",
    delays: "Mapping[str, float] | None" = None,
) -> RunBlame:
    """Build the critical-path blame decomposition for a finished run.

    ``jobs`` supplies the DAG structure (parent sets) the records alone
    do not carry; pass the same job objects the simulation ran.
    ``delays`` optionally cross-links each critical stage with the
    Algorithm 1 delay chosen for it (``DelaySchedule.delays`` — see
    :attr:`repro.schedulers.runner.SchedulerRun.delay_table`).

    The per-job identity — categories sum to the measured JCT
    bit-for-bit — holds by construction; :attr:`RunBlame.identity_exact`
    re-checks it and the makespan identity.
    """
    from repro.dag.job import Job as _Job

    job_list = [jobs] if isinstance(jobs, _Job) else list(jobs)
    if not job_list:
        raise ValueError("jobs must be non-empty")
    known = {j.job_id for j in job_list}
    missing = set(result.job_records) - known
    if missing:
        raise ValueError(
            f"result contains jobs without DAG structure: {sorted(missing)}"
        )

    job_blames: "dict[str, JobBlame]" = {}
    for job in job_list:
        blame = _job_blame(result, job, delays)
        if blame is not None:
            job_blames[job.job_id] = blame
    if not job_blames:
        raise ValueError("no finished jobs to blame (did the run fail?)")

    # The makespan path is the last-finishing job's critical path plus
    # its submission offset (time the run spent before that job
    # existed), categorized as dependency wait.
    mk_job_id = max(
        job_blames,
        key=lambda jid: (result.job_records[jid].finish_time, jid),
    )
    mk_rec = result.job_records[mk_job_id]
    exact = {c: Fraction(v) for c, v in job_blames[mk_job_id].exact.items()}
    exact["dependency"] += Fraction(mk_rec.submit_time)

    return RunBlame(
        label=label,
        makespan_seconds=result.makespan,
        makespan_job=mk_job_id,
        categories={c: float(v) for c, v in exact.items()},
        jobs=job_blames,
        exact=exact,
    )


def blame_diff(baseline: RunBlame, candidate: RunBlame) -> BlameDiff:
    """Per-category savings of ``candidate`` over ``baseline``.

    Positive ``saved[c]`` means the candidate's makespan path spent
    less time in category ``c``; :attr:`BlameDiff.recovery_seconds`
    aggregates the execution-time recovery (the overlap DelayStage
    converts contention/serial time into), and
    :attr:`BlameDiff.delay_invested` the deliberate delay paid for it.
    """
    saved = {
        c: baseline.categories.get(c, 0.0) - candidate.categories.get(c, 0.0)
        for c in CATEGORIES
    }
    return BlameDiff(
        baseline=baseline.label,
        candidate=candidate.label,
        makespan_baseline=baseline.makespan_seconds,
        makespan_candidate=candidate.makespan_seconds,
        saved=saved,
    )


# --------------------------------------------------------------------- #
# rendering and payload validation


def render_blame_markdown(
    blames: "Mapping[str, RunBlame]",
    title: str = "Critical-path blame",
    top_stages: int = 8,
) -> str:
    """Markdown blame tables across runs (``repro why --md`` and the
    ``repro report`` blame section)."""
    if not blames:
        raise ValueError("blames must be non-empty")
    order = list(blames)
    lines = [f"# {title}", ""]
    lines.append("| category (s) | " + " | ".join(order) + " |")
    lines.append("|---|" + "---|" * len(order))
    for c in CATEGORIES:
        cells = [f"{blames[k].categories.get(c, 0.0):.1f}" for k in order]
        lines.append(f"| {c} | " + " | ".join(cells) + " |")
    lines.append(
        "| **makespan** | "
        + " | ".join(f"**{blames[k].makespan_seconds:.1f}**" for k in order)
        + " |"
    )
    for k in order:
        blame = blames[k]
        job = blame.jobs[blame.makespan_job]
        lines.append("")
        lines.append(f"## {k}: critical chain of {blame.makespan_job}")
        lines.append("")
        lines.append(
            "| stage | span (s) | dominant category | chosen delay (s) "
            "| retries |"
        )
        lines.append("|---|---|---|---|---|")
        for sb in job.stages[-top_stages:]:
            dominant = max(sb.seconds, key=lambda c: (sb.seconds[c], c))
            chosen = "-" if sb.chosen_delay is None else f"{sb.chosen_delay:.1f}"
            lines.append(
                f"| {sb.stage_id} | {sb.finish - sb.start:.1f} "
                f"| {dominant} ({sb.seconds[dominant]:.1f} s) "
                f"| {chosen} | {sb.retries} |"
            )
    return "\n".join(lines)


def render_diff_markdown(diff: BlameDiff) -> str:
    """Markdown rendering of a cross-run blame diff."""
    lines = [
        f"# Blame diff — {diff.candidate} vs {diff.baseline}",
        "",
        f"makespan: {diff.makespan_baseline:.1f} s -> "
        f"{diff.makespan_candidate:.1f} s "
        f"(saved {diff.makespan_saved:.1f} s)",
        "",
        "| category | saved (s) |",
        "|---|---|",
    ]
    for c in CATEGORIES:
        lines.append(f"| {c} | {diff.saved[c]:+.1f} |")
    lines.append("")
    lines.append(
        f"execution time recovered: {diff.recovery_seconds:.1f} s; "
        f"deliberate delay invested: {diff.delay_invested:.1f} s"
    )
    return "\n".join(lines)


def blames_to_openmetrics_lines(
    blames: "Mapping[str, RunBlame]",
) -> "list[str]":
    """``repro_blame_seconds`` gauge family lines (no ``# EOF``)."""
    name = "repro_blame_seconds"
    lines = [
        f"# HELP {name} Critical-path seconds attributed per blame category",
        f"# TYPE {name} gauge",
    ]
    for run, blame in blames.items():
        for c in CATEGORIES:
            value = float(blame.categories.get(c, 0.0))
            lines.append(f'{name}{{run="{run}",category="{c}"}} {value!r}')
    return lines


def validate_blame_payload(payload: "Mapping") -> "list[str]":
    """Schema check for ``repro why --json`` payloads (used by CI).

    Returns a list of human-readable problems; empty means valid.
    Accepts both the single-run payload (``blames`` mapping) and the
    diff payload (``diff`` object present).
    """
    errors: "list[str]" = []

    def _check_run(label: str, blame: "Mapping") -> None:
        for field_name in ("makespan_seconds", "makespan_job", "categories",
                           "jobs", "identity_exact", "total_seconds"):
            if field_name not in blame:
                errors.append(f"{label}: missing field {field_name!r}")
        cats = blame.get("categories", {})
        for c in CATEGORIES:
            if c not in cats:
                errors.append(f"{label}: missing category {c!r}")
        extra = set(cats) - set(CATEGORIES)
        if extra:
            errors.append(f"{label}: unknown categories {sorted(extra)}")
        if blame.get("identity_exact") is not True:
            errors.append(f"{label}: blame identity is not exact")
        for jid, job in (blame.get("jobs") or {}).items():
            if job.get("identity_exact") is not True:
                errors.append(f"{label}/{jid}: job blame identity is not exact")
            for sb in job.get("stages", ()):
                for field_name in ("stage_id", "seconds"):
                    if field_name not in sb:
                        errors.append(
                            f"{label}/{jid}: stage entry missing {field_name!r}"
                        )

    blames = payload.get("blames")
    if not isinstance(blames, Mapping) or not blames:
        errors.append("payload has no 'blames' mapping")
        return errors
    for label, blame in blames.items():
        if isinstance(blame, Mapping):
            _check_run(str(label), blame)
        else:
            errors.append(f"{label}: blame entry is not an object")

    diff = payload.get("diff")
    if diff is not None:
        for field_name in ("baseline", "candidate", "saved",
                           "makespan_saved", "recovery_seconds"):
            if field_name not in diff:
                errors.append(f"diff: missing field {field_name!r}")
        for c in CATEGORIES:
            if c not in diff.get("saved", {}):
                errors.append(f"diff: missing saved category {c!r}")
    return errors
