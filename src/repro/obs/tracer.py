"""Low-overhead span tracer with explicit timestamps.

The simulator is event-driven and its spans overlap arbitrarily, so
this tracer takes *explicit* ``(ts, dur)`` pairs instead of wrapping a
wall clock: the simulation emits spans from its stage records after
the run (zero hot-path cost), and Algorithm 1 emits decision spans
with offsets from its own ``perf_counter`` start.  Every record lands
on a ``track`` — a ``(process, thread)`` label pair that the Chrome
exporter turns into Perfetto tracks (one process per simulated node,
one scheduler-decisions track, one row per stage).

``NULL_TRACER`` is the off state: same interface, no-ops throughout,
so instrumented code pays one attribute check (or nothing at all) when
tracing is disabled.

This module deliberately imports nothing from the rest of ``repro`` so
the innermost simulator modules can import it without cycles.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Mapping

#: A span's destination: ``(process label, thread label)``.
Track = tuple[str, str]

#: Parent id meaning "root span".
NO_PARENT = 0


def _check_time(name: str, value: float) -> float:
    value = float(value)
    if math.isnan(value) or math.isinf(value) or value < 0.0:
        raise ValueError(f"{name} must be finite and >= 0, got {value!r}")
    return value


class Span:
    """One completed span: a named interval on a track.

    ``ts``/``dur`` are seconds on whatever clock the emitter used (the
    simulation clock for stage spans, planning wall-clock offsets for
    decision spans).  ``span_id``/``parent_id`` encode the logical tree
    exactly, independent of track placement.
    """

    __slots__ = ("span_id", "parent_id", "name", "cat", "track", "ts", "dur", "args")

    def __init__(
        self,
        span_id: int,
        name: str,
        ts: float,
        dur: float,
        track: Track,
        cat: str = "span",
        parent_id: int = NO_PARENT,
        args: "dict[str, Any] | None" = None,
    ) -> None:
        self.span_id = int(span_id)
        self.parent_id = int(parent_id)
        self.name = str(name)
        self.cat = str(cat)
        self.track = (str(track[0]), str(track[1]))
        self.ts = _check_time("ts", ts)
        self.dur = _check_time("dur", dur)
        self.args = dict(args) if args else {}

    def to_dict(self) -> dict:
        return {
            "sid": self.span_id,
            "psid": self.parent_id,
            "name": self.name,
            "cat": self.cat,
            "track": list(self.track),
            "ts": self.ts,
            "dur": self.dur,
            "args": self.args,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "Span":
        track = record["track"]
        return cls(
            span_id=record["sid"],
            name=record["name"],
            ts=record["ts"],
            dur=record["dur"],
            track=(track[0], track[1]),
            cat=record.get("cat", "span"),
            parent_id=record.get("psid", NO_PARENT),
            args=record.get("args") or {},
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.span_id}, {self.name!r}, ts={self.ts:.6f}, "
            f"dur={self.dur:.6f}, track={self.track})"
        )


class Instant:
    """A zero-duration marker (e.g. the final schedule record)."""

    __slots__ = ("name", "cat", "track", "ts", "args")

    def __init__(
        self,
        name: str,
        ts: float,
        track: Track,
        cat: str = "instant",
        args: "dict[str, Any] | None" = None,
    ) -> None:
        self.name = str(name)
        self.cat = str(cat)
        self.track = (str(track[0]), str(track[1]))
        self.ts = _check_time("ts", ts)
        self.args = dict(args) if args else {}


class CounterSample:
    """One sample of a time-varying counter (a Perfetto counter track)."""

    __slots__ = ("name", "track", "ts", "value")

    def __init__(self, name: str, ts: float, value: float, track: Track) -> None:
        self.name = str(name)
        self.track = (str(track[0]), str(track[1]))
        self.ts = _check_time("ts", ts)
        value = float(value)
        if math.isnan(value) or math.isinf(value):
            raise ValueError(f"counter value must be finite, got {value!r}")
        self.value = value


class CounterRegistry:
    """Monotonic counters plus last-value gauges.

    Serialized into run results and trace exports so aggregate run
    telemetry (stages delayed, scan evaluations, engine events,
    per-resource busy fractions) travels with every artifact.
    """

    __slots__ = ("_counters", "_gauges")

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + float(value)

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    def get(self, name: str, default: float = 0.0) -> float:
        if name in self._counters:
            return self._counters[name]
        return self._gauges.get(name, default)

    def as_dict(self) -> dict:
        return {"counters": dict(self._counters), "gauges": dict(self._gauges)}

    def merge(self, other: "CounterRegistry") -> None:
        for name, value in other._counters.items():
            self.inc(name, value)
        self._gauges.update(other._gauges)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges)


class Tracer:
    """Collects spans, instants, and counter samples for one run."""

    #: Instrumented code may skip building expensive args when False.
    enabled: bool = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.samples: list[CounterSample] = []
        self.counters = CounterRegistry()
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------ #

    def add_span(
        self,
        name: str,
        ts: float,
        dur: float,
        *,
        track: Track,
        cat: str = "span",
        parent: int = NO_PARENT,
        args: "dict[str, Any] | None" = None,
    ) -> int:
        """Record a completed span; returns its id (usable as ``parent``)."""
        span = Span(next(self._ids), name, ts, dur, track, cat, parent, args)
        self.spans.append(span)
        return span.span_id

    def instant(
        self,
        name: str,
        ts: float,
        *,
        track: Track,
        cat: str = "instant",
        args: "dict[str, Any] | None" = None,
    ) -> None:
        self.instants.append(Instant(name, ts, track, cat, args))

    def sample(self, name: str, ts: float, value: float, *, track: Track) -> None:
        self.samples.append(CounterSample(name, ts, value, track))

    # ------------------------------------------------------------------ #

    @property
    def num_events(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.samples)

    def tracks(self) -> list[Track]:
        """All distinct tracks, in first-appearance order."""
        seen: dict[Track, None] = {}
        for span in self.spans:
            seen.setdefault(span.track)
        for inst in self.instants:
            seen.setdefault(inst.track)
        for sample in self.samples:
            seen.setdefault(sample.track)
        return list(seen)


class _NullCounters(CounterRegistry):
    """Registry that drops everything (the off state)."""

    __slots__ = ()

    def inc(self, name: str, value: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass


class NullTracer(Tracer):
    """No-op tracer: same interface, nothing recorded, nothing allocated."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self.counters = _NullCounters()

    def add_span(self, name, ts, dur, *, track, cat="span", parent=NO_PARENT, args=None) -> int:
        return NO_PARENT

    def instant(self, name, ts, *, track, cat="instant", args=None) -> None:
        pass

    def sample(self, name, ts, value, *, track) -> None:
        pass


#: Shared off-state tracer; instrumented code defaults to this.
NULL_TRACER = NullTracer()
