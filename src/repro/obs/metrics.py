"""Aggregate interleaving analytics over a finished run.

The paper's headline claim is resource *interleaving*: DelayStage fills
the CPU/network troughs that stock Spark leaves idle (Figs. 4 and 12,
Tables 3 and 4).  This module turns a :class:`SimulationResult` into
the machine-readable quantities behind those figures:

* **stage-overlap ratio** — of the time at least one stage is
  executing, the fraction during which two or more execute
  concurrently (the "parallel stages actually overlap" measure);
* **CPU/network complementarity** — the worker-averaged fraction of
  the run during which a node's CPU *and* NIC are simultaneously busy,
  i.e. one stage's network phase genuinely overlaps another's compute
  phase rather than the resources alternating;
* **delay-wait share** — how much of the makespan the schedule spent
  in deliberate submission delays, overall and per execution path
  (Fig. 7's decomposition);
* **utilization bands** — the time-weighted histogram of per-worker
  CPU/network utilization (Fig. 4's "below 10 % for 39.1 % of the
  time" is the lowest band), plus the cluster averages of Table 4 and
  the worker mean/std summary of Table 3.

Everything is exposed as frozen dataclasses with ``to_dict`` methods,
plus Prometheus/OpenMetrics-text and CSV exporters and a markdown
comparison renderer — the machinery behind ``repro report``.

Import discipline: this module is imported from ``repro.obs.__init__``,
which the simulator itself triggers, so at module level it may only
depend on the standard library and numpy; simulator/analysis/dag
imports happen lazily inside the builder functions.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.stats import UtilizationSummary
    from repro.dag.job import Job
    from repro.simulator.metrics import MetricsCollector
    from repro.simulator.simulation import SimulationResult

#: Default utilization-band edges, in percent.  The lowest band
#: ``[0, 10)`` is exactly the paper's Fig. 4(b) "below 10 %" bucket.
DEFAULT_BAND_EDGES: "tuple[float, ...]" = (0.0, 10.0, 25.0, 50.0, 75.0, 100.0)

#: A resource counts as "busy" for the complementarity index when its
#: utilization fraction exceeds this (5 % — filters numeric dribble
#: without hiding genuine low-rate activity).
DEFAULT_BUSY_THRESHOLD = 0.05


# --------------------------------------------------------------------- #
# utilization bands


@dataclass(frozen=True)
class UtilizationBands:
    """Time(or sample)-weighted histogram of a utilization series.

    ``fractions[i]`` is the weight fraction spent in
    ``[edges[i], edges[i+1])``; values below ``edges[0]`` count toward
    the first band and values at or above ``edges[-1]`` toward the
    last, so the fractions always sum to 1 for non-empty input.
    """

    edges: "tuple[float, ...]"
    fractions: "tuple[float, ...]"

    @property
    def low_fraction(self) -> float:
        """Weight below ``edges[1]`` — Fig. 4(b)'s "< 10 %" number."""
        return self.fractions[0]

    def labels(self) -> "list[str]":
        return [
            f"{lo:g}-{hi:g}" for lo, hi in zip(self.edges, self.edges[1:])
        ]

    def to_dict(self) -> dict:
        return {
            "edges": [float(e) for e in self.edges],
            "labels": self.labels(),
            "fractions": [float(f) for f in self.fractions],
        }


def band_fractions(
    values: "Sequence[float] | np.ndarray",
    edges: "Sequence[float]" = DEFAULT_BAND_EDGES,
    weights: "Sequence[float] | np.ndarray | None" = None,
) -> UtilizationBands:
    """Histogram ``values`` into right-open bands.

    Bands are ``[edges[i], edges[i+1])``; out-of-range values clip into
    the first/last band.  With ``weights`` (e.g. segment durations) the
    fractions are weight shares; without, they are sample shares — in
    which case the first band's fraction is **bit-identical** to
    ``np.mean(values < edges[1])``, the formula the Fig. 4 analysis
    uses (both are an integer count divided by the sample count).
    """
    edge_t = tuple(float(e) for e in edges)
    if len(edge_t) < 2:
        raise ValueError("edges must define at least one band")
    for lo, hi in zip(edge_t, edge_t[1:]):
        if not lo < hi:
            raise ValueError(f"edges must be strictly increasing, got {edge_t}")
    n_bands = len(edge_t) - 1
    v = np.asarray(values, dtype=float).ravel()
    if v.size == 0:
        return UtilizationBands(edge_t, (0.0,) * n_bands)
    idx = np.searchsorted(edge_t, v, side="right") - 1
    idx = np.clip(idx, 0, n_bands - 1)
    if weights is None:
        counts = np.bincount(idx, minlength=n_bands)
        fractions = counts / v.size
    else:
        w = np.asarray(weights, dtype=float).ravel()
        if w.shape != v.shape:
            raise ValueError(
                f"weights shape {w.shape} does not match values {v.shape}"
            )
        total = float(np.sum(w))
        if total <= 0:
            return UtilizationBands(edge_t, (0.0,) * n_bands)
        fractions = np.bincount(idx, weights=w, minlength=n_bands) / total
    return UtilizationBands(edge_t, tuple(float(f) for f in fractions))


def fraction_below(
    values: "Sequence[float] | np.ndarray", threshold: float
) -> float:
    """Sample fraction strictly below ``threshold``.

    Identical to ``np.mean(values < threshold)`` (empty input → 0.0);
    :func:`repro.trace.analysis.machine_low_utilization_fraction`
    delegates here so the trace analysis and the report layer cannot
    drift apart.
    """
    v = np.asarray(values, dtype=float).ravel()
    if v.size == 0:
        return 0.0
    return band_fractions(v, edges=(0.0, threshold, math.inf)).fractions[0]


# --------------------------------------------------------------------- #
# per-run report


@dataclass(frozen=True)
class PathDelayShare:
    """Deliberate delay-wait accumulated along one execution path."""

    stages: "tuple[str, ...]"
    delay_seconds: float
    share: float

    def to_dict(self) -> dict:
        return {
            "stages": list(self.stages),
            "delay_seconds": float(self.delay_seconds),
            "share": float(self.share),
        }


@dataclass(frozen=True)
class InterleavingReport:
    """One run's interleaving analytics (see the module docstring)."""

    label: str
    jct_seconds: float
    makespan_seconds: float
    stage_overlap_ratio: float
    cpu_net_complementarity: float
    delay_wait_seconds: float
    delay_wait_share: float
    path_delay_shares: "tuple[PathDelayShare, ...]"
    cpu_bands: UtilizationBands
    net_bands: UtilizationBands
    cluster_cpu_pct: float
    cluster_net_pct: float
    utilization: "UtilizationSummary"
    #: Per-stage delay-wait seconds (``(stage_id, seconds)``, sorted by
    #: stage id) — the raw addends behind ``delay_wait_seconds``,
    #: exported as CSV columns so blame output can be cross-checked
    #: against report output.
    stage_delay_waits: "tuple[tuple[str, float], ...]" = ()
    #: Critical-path blame categories for the makespan path
    #: (:data:`repro.obs.critical.CATEGORIES` → seconds); ``None`` when
    #: the run carried no demand accounting or no job DAG was passed.
    blame: "dict[str, float] | None" = None

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "jct_seconds": float(self.jct_seconds),
            "makespan_seconds": float(self.makespan_seconds),
            "stage_overlap_ratio": float(self.stage_overlap_ratio),
            "cpu_net_complementarity": float(self.cpu_net_complementarity),
            "delay_wait_seconds": float(self.delay_wait_seconds),
            "delay_wait_share": float(self.delay_wait_share),
            "path_delay_shares": [p.to_dict() for p in self.path_delay_shares],
            "cpu_bands": self.cpu_bands.to_dict(),
            "net_bands": self.net_bands.to_dict(),
            "cluster_cpu_pct": float(self.cluster_cpu_pct),
            "cluster_net_pct": float(self.cluster_net_pct),
            "utilization": {
                "net_mb_mean": float(self.utilization.net_mb_mean),
                "net_mb_std": float(self.utilization.net_mb_std),
                "cpu_pct_mean": float(self.utilization.cpu_pct_mean),
                "cpu_pct_std": float(self.utilization.cpu_pct_std),
            },
            "stage_delay_waits": {
                sid: float(d) for sid, d in self.stage_delay_waits
            },
            "blame": (
                None if self.blame is None
                else {k: float(v) for k, v in self.blame.items()}
            ),
        }


def _stage_overlap_ratio(result: "SimulationResult") -> float:
    """Time with >= 2 stages executing over time with >= 1 executing."""
    deltas: "list[tuple[float, int]]" = []
    for rec in result.stage_records.values():
        t0, t1 = rec.submit_time, rec.finish_time
        if math.isfinite(t0) and math.isfinite(t1) and t1 > t0:
            deltas.append((t0, 1))
            deltas.append((t1, -1))
    if not deltas:
        return 0.0
    # Sort ends before starts at equal timestamps: a stage finishing
    # the instant another submits is a hand-off, not an overlap.
    deltas.sort(key=lambda e: (e[0], e[1]))
    busy1 = busy2 = 0.0
    depth = 0
    prev = deltas[0][0]
    for t, d in deltas:
        if t > prev:
            span = t - prev
            if depth >= 1:
                busy1 += span
            if depth >= 2:
                busy2 += span
            prev = t
        depth += d
    if busy1 <= 0:
        return 0.0
    return busy2 / busy1


def _complementarity(
    metrics: "MetricsCollector", makespan: float, threshold: float
) -> float:
    """Worker-averaged fraction of the run with CPU *and* NIC busy."""
    workers = metrics.cluster.worker_ids
    if not workers or makespan <= 0:
        return 0.0
    fractions = []
    for node_id in workers:
        series = metrics.node_series(node_id)
        cpu = series.values("cpu_utilization")
        net = series.values("net_utilization")
        lo = np.maximum(series.t0, 0.0)
        hi = np.minimum(series.t1, makespan)
        w = np.maximum(hi - lo, 0.0)
        both = (cpu > threshold) & (net > threshold)
        fractions.append(float(np.sum(w[both]) / makespan))
    return float(np.mean(fractions))


def _cluster_bands(
    metrics: "MetricsCollector",
    makespan: float,
    metric: str,
    edges: "Sequence[float]",
) -> UtilizationBands:
    """Time-weighted utilization bands pooled over all workers.

    Utilization is in percent; window time not covered by any observed
    segment counts as 0 % (a monitoring agent would report idle), so
    the weights always sum to ``workers * makespan``.
    """
    workers = metrics.cluster.worker_ids
    if not workers or makespan <= 0:
        return band_fractions(np.zeros(0), edges)
    values: "list[np.ndarray]" = []
    weights: "list[np.ndarray]" = []
    for node_id in workers:
        series = metrics.node_series(node_id)
        lo = np.maximum(series.t0, 0.0)
        hi = np.minimum(series.t1, makespan)
        w = np.maximum(hi - lo, 0.0)
        values.append(series.values(metric) * 100.0)
        weights.append(w)
        uncovered = makespan - float(np.sum(w))
        if uncovered > 0:
            values.append(np.zeros(1))
            weights.append(np.full(1, uncovered))
    return band_fractions(
        np.concatenate(values), edges, weights=np.concatenate(weights)
    )


def _path_delay_shares(
    result: "SimulationResult", job: "Job", makespan: float, max_paths: int
) -> "tuple[PathDelayShare, ...]":
    from repro.dag.paths import execution_paths

    shares = []
    for path in execution_paths(job)[:max_paths]:
        delay = 0.0
        for sid in path.stages:
            rec = result.stage_records.get((job.job_id, sid))
            if rec is None:
                continue
            d = rec.submit_time - rec.ready_time
            if math.isfinite(d) and d > 0:
                delay += d
        shares.append(
            PathDelayShare(
                stages=tuple(path.stages),
                delay_seconds=delay,
                share=delay / makespan if makespan > 0 else 0.0,
            )
        )
    return tuple(shares)


def interleaving_report(
    result: "SimulationResult",
    job: "Job | None" = None,
    *,
    label: str = "run",
    band_edges: "Sequence[float]" = DEFAULT_BAND_EDGES,
    busy_threshold: float = DEFAULT_BUSY_THRESHOLD,
    max_paths: int = 16,
) -> InterleavingReport:
    """Compute the interleaving analytics for one finished run.

    Requires metrics tracking (``track_metrics=True``).  Pass the
    ``job`` to additionally decompose the delay-wait per execution
    path (Fig. 7) and — when the run carries demand accounting — the
    critical-path blame categories (:mod:`repro.obs.critical`);
    without it ``path_delay_shares`` is empty and ``blame`` is None.  The
    Table 3 summary embedded as ``utilization`` and the Table 4
    cluster averages reuse the exact computations of
    :func:`repro.analysis.stats.utilization_summary` and
    :meth:`~repro.simulator.metrics.MetricsCollector.cluster_average`,
    so report values and benchmark assertions cannot drift.
    """
    from repro.analysis.stats import utilization_summary

    metrics = result.metrics
    if metrics is None:
        raise ValueError(
            "run had metrics tracking disabled; rerun with track_metrics=True"
        )
    makespan = float(result.makespan)
    if len(result.job_records) == 1:
        (jrec,) = result.job_records.values()
        jct = float(jrec.completion_time)
    else:
        jct = makespan

    delay_total = 0.0
    stage_delays: "list[tuple[str, float]]" = []
    for (_jid, sid), rec in sorted(result.stage_records.items()):
        d = rec.submit_time - rec.ready_time
        if math.isfinite(d) and d > 0:
            delay_total += d
            stage_delays.append((sid, d))
        else:
            stage_delays.append((sid, 0.0))

    blame = None
    if (job is not None and result.demands is not None
            and set(result.job_records) == {job.job_id}):
        from repro.obs.critical import run_blame

        blame = dict(run_blame(result, job, label=label).categories)

    return InterleavingReport(
        label=label,
        jct_seconds=jct,
        makespan_seconds=makespan,
        stage_overlap_ratio=_stage_overlap_ratio(result),
        cpu_net_complementarity=_complementarity(
            metrics, makespan, busy_threshold
        ),
        delay_wait_seconds=delay_total,
        delay_wait_share=delay_total / makespan if makespan > 0 else 0.0,
        path_delay_shares=(
            _path_delay_shares(result, job, makespan, max_paths)
            if job is not None
            else ()
        ),
        cpu_bands=_cluster_bands(metrics, makespan, "cpu_utilization", band_edges),
        net_bands=_cluster_bands(metrics, makespan, "net_utilization", band_edges),
        cluster_cpu_pct=metrics.cluster_average("cpu_utilization", 0.0, makespan) * 100.0,
        cluster_net_pct=metrics.cluster_average("net_utilization", 0.0, makespan) * 100.0,
        utilization=utilization_summary(result),
        stage_delay_waits=tuple(stage_delays),
        blame=blame,
    )


# --------------------------------------------------------------------- #
# comparison rendering and exporters


def render_markdown_report(
    reports: "Mapping[str, InterleavingReport]",
    title: str = "Interleaving report",
) -> str:
    """Markdown comparison table across runs (``repro report`` output)."""
    if not reports:
        raise ValueError("reports must be non-empty")
    order = list(reports)
    first = reports[order[0]]
    low_edge = first.cpu_bands.edges[1]

    rows: "list[tuple[str, list[str]]]" = [
        ("JCT (s)", [f"{reports[k].jct_seconds:.1f}" for k in order]),
        ("stage overlap ratio",
         [f"{reports[k].stage_overlap_ratio:.3f}" for k in order]),
        ("CPU/net complementarity",
         [f"{reports[k].cpu_net_complementarity:.3f}" for k in order]),
        ("delay-wait (s)",
         [f"{reports[k].delay_wait_seconds:.1f}" for k in order]),
        ("delay-wait share",
         [f"{reports[k].delay_wait_share:.1%}" for k in order]),
        ("cluster CPU %",
         [f"{reports[k].cluster_cpu_pct:.1f}" for k in order]),
        ("cluster net %",
         [f"{reports[k].cluster_net_pct:.1f}" for k in order]),
        ("worker net MB/s mean (std)",
         [f"{reports[k].utilization.net_mb_mean:.1f} "
          f"({reports[k].utilization.net_mb_std:.1f})" for k in order]),
        ("worker CPU % mean (std)",
         [f"{reports[k].utilization.cpu_pct_mean:.1f} "
          f"({reports[k].utilization.cpu_pct_std:.1f})" for k in order]),
        (f"CPU time below {low_edge:g} %",
         [f"{reports[k].cpu_bands.low_fraction:.1%}" for k in order]),
        (f"net time below {low_edge:g} %",
         [f"{reports[k].net_bands.low_fraction:.1%}" for k in order]),
    ]

    lines = [f"# {title}", ""]
    lines.append("| metric | " + " | ".join(order) + " |")
    lines.append("|---|" + "---|" * len(order))
    for name, cells in rows:
        lines.append(f"| {name} | " + " | ".join(cells) + " |")

    for resource, attr in (("CPU", "cpu_bands"), ("network", "net_bands")):
        lines.append("")
        lines.append(f"## {resource} utilization bands (time share)")
        lines.append("")
        labels = getattr(first, attr).labels()
        lines.append("| band (%) | " + " | ".join(order) + " |")
        lines.append("|---|" + "---|" * len(order))
        for i, band in enumerate(labels):
            cells = [
                f"{getattr(reports[k], attr).fractions[i]:.1%}" for k in order
            ]
            lines.append(f"| {band} | " + " | ".join(cells) + " |")

    blamed = [k for k in order if reports[k].blame is not None]
    if blamed:
        from repro.obs.critical import CATEGORIES

        lines.append("")
        lines.append("## Critical-path blame (seconds, sums to makespan)")
        lines.append("")
        lines.append("| category | " + " | ".join(blamed) + " |")
        lines.append("|---|" + "---|" * len(blamed))
        for cat in CATEGORIES:
            cells = [
                f"{(reports[k].blame or {}).get(cat, 0.0):.1f}" for k in blamed
            ]
            lines.append(f"| {cat} | " + " | ".join(cells) + " |")

    delayed = [
        k for k in order
        if any(p.delay_seconds > 0 for p in reports[k].path_delay_shares)
    ]
    if delayed:
        lines.append("")
        lines.append("## Delay-wait per execution path")
        lines.append("")
        lines.append("| run | path | delay (s) | share of makespan |")
        lines.append("|---|---|---|---|")
        for k in delayed:
            for p in reports[k].path_delay_shares:
                lines.append(
                    f"| {k} | {' -> '.join(p.stages)} "
                    f"| {p.delay_seconds:.1f} | {p.share:.1%} |"
                )
    return "\n".join(lines)


def _openmetrics_labels(labels: "Mapping[str, str]") -> str:
    inner = ",".join(f'{k}="{v}"' for k, v in labels.items())
    return "{" + inner + "}"


def reports_to_openmetrics(reports: "Mapping[str, InterleavingReport]") -> str:
    """Prometheus/OpenMetrics text exposition of the report metrics."""
    scalar_metrics: "list[tuple[str, str, str]]" = [
        ("repro_jct_seconds", "Job completion time", "jct_seconds"),
        ("repro_makespan_seconds", "Run makespan", "makespan_seconds"),
        ("repro_stage_overlap_ratio",
         "Fraction of stage-busy time with two or more stages executing",
         "stage_overlap_ratio"),
        ("repro_cpu_net_complementarity",
         "Worker-averaged time fraction with CPU and network busy together",
         "cpu_net_complementarity"),
        ("repro_delay_wait_seconds",
         "Total deliberate submission delay", "delay_wait_seconds"),
        ("repro_delay_wait_share",
         "Delay-wait as a fraction of the makespan", "delay_wait_share"),
        ("repro_cluster_cpu_percent",
         "Cluster-average CPU utilization (percent)", "cluster_cpu_pct"),
        ("repro_cluster_net_percent",
         "Cluster-average network utilization (percent)", "cluster_net_pct"),
    ]
    lines: "list[str]" = []
    for name, help_text, attr in scalar_metrics:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        for run, report in reports.items():
            value = float(getattr(report, attr))
            lines.append(f"{name}{_openmetrics_labels({'run': run})} {value!r}")
    name = "repro_utilization_band_fraction"
    lines.append(f"# HELP {name} Time share per utilization band (percent edges)")
    lines.append(f"# TYPE {name} gauge")
    for run, report in reports.items():
        for resource, bands in (("cpu", report.cpu_bands),
                                ("net", report.net_bands)):
            for band, frac in zip(bands.labels(), bands.fractions):
                labels = {"run": run, "resource": resource, "band": band}
                lines.append(f"{name}{_openmetrics_labels(labels)} {float(frac)!r}")
    name = "repro_stage_delay_wait_seconds"
    lines.append(f"# HELP {name} Deliberate submission delay per stage")
    lines.append(f"# TYPE {name} gauge")
    for run, report in reports.items():
        for sid, delay in report.stage_delay_waits:
            labels = {"run": run, "stage": sid}
            lines.append(f"{name}{_openmetrics_labels(labels)} {float(delay)!r}")
    if any(r.blame is not None for r in reports.values()):
        name = "repro_blame_seconds"
        lines.append(f"# HELP {name} Critical-path seconds per blame category")
        lines.append(f"# TYPE {name} gauge")
        for run, report in reports.items():
            for cat, seconds in (report.blame or {}).items():
                labels = {"run": run, "category": cat}
                lines.append(
                    f"{name}{_openmetrics_labels(labels)} {float(seconds)!r}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def reports_to_csv(reports: "Mapping[str, InterleavingReport]") -> str:
    """One CSV row per run; band columns from the first report's edges."""
    if not reports:
        raise ValueError("reports must be non-empty")
    first = next(iter(reports.values()))
    band_labels = first.cpu_bands.labels()
    header = [
        "run", "jct_seconds", "makespan_seconds", "stage_overlap_ratio",
        "cpu_net_complementarity", "delay_wait_seconds", "delay_wait_share",
        "cluster_cpu_pct", "cluster_net_pct",
        "net_mb_mean", "net_mb_std", "cpu_pct_mean", "cpu_pct_std",
    ]
    header += [f"cpu_band_{b}" for b in band_labels]
    header += [f"net_band_{b}" for b in band_labels]
    # Per-stage delay-wait columns (cross-checkable against `repro why`
    # blame output) and, when any report carries blame, the per-category
    # critical-path seconds.  Both append after the long-standing
    # columns so existing consumers keep their positions.
    stage_ids = sorted({
        sid for r in reports.values() for sid, _d in r.stage_delay_waits
    })
    header += [f"delay_wait_{sid}" for sid in stage_ids]
    blame_cats: "list[str]" = []
    if any(r.blame is not None for r in reports.values()):
        from repro.obs.critical import CATEGORIES

        blame_cats = list(CATEGORIES)
        header += [f"blame_{c}" for c in blame_cats]
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(header)
    for run, r in reports.items():
        row: "list[object]" = [
            run, r.jct_seconds, r.makespan_seconds, r.stage_overlap_ratio,
            r.cpu_net_complementarity, r.delay_wait_seconds,
            r.delay_wait_share, r.cluster_cpu_pct, r.cluster_net_pct,
            r.utilization.net_mb_mean, r.utilization.net_mb_std,
            r.utilization.cpu_pct_mean, r.utilization.cpu_pct_std,
        ]
        row += list(r.cpu_bands.fractions)
        row += list(r.net_bands.fractions)
        delays = dict(r.stage_delay_waits)
        row += [delays.get(sid, 0.0) for sid in stage_ids]
        blame = r.blame or {}
        row += [blame.get(c, 0.0) for c in blame_cats]
        writer.writerow(row)
    return buf.getvalue()
