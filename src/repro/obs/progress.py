"""Live stderr heartbeat for long replays and comparisons.

:class:`ProgressReporter` is now a *renderer over the live telemetry
bus* (:mod:`repro.obs.live.bus`): it subclasses
:class:`~repro.obs.live.bus.TelemetryPublisher`, so the runners keep
calling the same progress protocol — :meth:`engine_tick` from the
fluid engine's hot loop (wired through ``Simulation(progress=...)``),
:meth:`job_done` for serial completions, :meth:`shard_done` for
parallel-replay shards — and each call becomes one bus event that the
reporter itself subscribes to and throttles into at most a couple of
newline-terminated status lines per second on stderr:

``[progress] replay: 12/80 jobs, 1.4e+06 events (3.5e+05/s), t_sim=418.2s, eta 11s``

Because rendering rides the bus, the same event stream simultaneously
feeds the metrics registry, ``/events`` HTTP clients, and the
structured logger — a single telemetry source, with stderr output
byte-identical to the pre-bus reporter.

Design constraints:

* **Zero cost when off** — callers pass ``progress=None`` (the default)
  and the engine's hot loop pays one ``is not None`` check per event.
* **Bit-identity** — the reporter only *reads* engine telemetry
  (``events_processed``, ``now``); it never influences scheduling, and
  parallel replay merges shard results by index regardless of the
  completion order the callbacks observe.
* **Lint-clean timing** — throttling and ETA use
  ``time.perf_counter`` (duration measurement), never wall-clock time.
"""

from __future__ import annotations

import sys
import time
from typing import TYPE_CHECKING, Callable, Optional, TextIO

from repro.obs.live.bus import TelemetryBus, TelemetryPublisher

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.engine import FluidEngine

#: The engine calls its progress hook every this many events; chosen so
#: even the 1k-job replay ticks many times per second while the per-event
#: cost stays a single modulo on an already-local counter.
DEFAULT_PROGRESS_EVERY = 20_000

#: Bus event types the stderr renderer reacts to (throttled); shard
#: completions force an emit, run completion renders the final line.
_RENDERED_EVENTS = frozenset({"tick", "job", "shard", "run_finished"})


class ProgressReporter(TelemetryPublisher):
    """Throttled stderr heartbeat; see the module docstring."""

    def __init__(
        self,
        label: str = "run",
        total_jobs: "Optional[int]" = None,
        stream: "Optional[TextIO]" = None,
        min_interval_s: float = 0.5,
        bus: "Optional[TelemetryBus]" = None,
        run_id: "Optional[str]" = None,
    ) -> None:
        super().__init__(bus=bus, label=label, total_jobs=total_jobs,
                         run_id=run_id)
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self._started = time.perf_counter()
        self._last_emit = self._started - min_interval_s  # emit immediately
        self._lines_emitted = 0
        self.bus.subscribe(self._on_event)

    # -- bus subscriber ------------------------------------------------ #

    def _on_event(self, event: dict) -> None:
        """Render bus events published by *this* reporter's protocol calls.

        State (``jobs_done``, ``events_total``, ``t_sim``) is updated by
        the publisher methods before the event is delivered, so the
        rendered line always reflects the event that triggered it.
        """
        type_ = event.get("type")
        if type_ not in _RENDERED_EVENTS or event.get("run") != self.run_id:
            return
        if type_ == "run_finished":
            if self._lines_emitted or self.jobs_done:
                self._emit(final=True)
        elif type_ == "shard":
            self._maybe_emit(force=True)
        else:
            self._maybe_emit()

    # -- rendering ----------------------------------------------------- #

    def _maybe_emit(self, force: bool = False) -> None:
        now = time.perf_counter()
        if not force and now - self._last_emit < self.min_interval_s:
            return
        self._emit(now=now)

    def _emit(self, now: "Optional[float]" = None, final: bool = False) -> None:
        if now is None:
            now = time.perf_counter()
        self._last_emit = now
        elapsed = max(now - self._started, 1e-9)
        events = self.events_total
        bits = []
        if self.total_jobs is not None:
            bits.append(f"{self.jobs_done}/{self.total_jobs} jobs")
        else:
            bits.append(f"{self.jobs_done} jobs")
        bits.append(f"{events:.3g} events ({events / elapsed:.3g}/s)")
        bits.append(f"t_sim={self.t_sim:.1f}s")
        eta = self._eta(elapsed)
        if final:
            bits.append(f"done in {elapsed:.1f}s")
        elif eta is not None:
            bits.append(f"eta {eta:.0f}s")
        self.stream.write(f"[progress] {self.label}: " + ", ".join(bits) + "\n")
        self.stream.flush()
        self._lines_emitted += 1

    def _eta(self, elapsed: float) -> "Optional[float]":
        if self.total_jobs is None or self.jobs_done <= 0:
            return None
        remaining = self.total_jobs - self.jobs_done
        if remaining <= 0:
            return 0.0
        return elapsed / self.jobs_done * remaining


def engine_hook(
    reporter: "Optional[ProgressReporter]",
) -> "Optional[Callable[[FluidEngine], None]]":
    """The engine-facing callback for ``reporter``, or None when off."""
    if reporter is None:
        return None
    return reporter.engine_tick
