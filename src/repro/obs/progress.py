"""Live stderr heartbeat for long replays and comparisons.

:class:`ProgressReporter` receives ticks from three sources — the fluid
engine's hot loop (via :meth:`engine_tick`, wired through
``Simulation(progress=...)``), per-job completions in serial runs
(:meth:`job_done`), and shard completions in parallel replay
(:meth:`shard_done`) — and throttles them into at most a couple of
newline-terminated status lines per second on stderr:

``[progress] replay: 12/80 jobs, 1.4e+06 events (3.5e+05/s), t_sim=418.2s, eta 11s``

Design constraints:

* **Zero cost when off** — callers pass ``progress=None`` (the default)
  and the engine's hot loop pays one ``is not None`` check per event.
* **Bit-identity** — the reporter only *reads* engine telemetry
  (``events_processed``, ``now``); it never influences scheduling, and
  parallel replay merges shard results by index regardless of the
  completion order the callbacks observe.
* **Lint-clean timing** — throttling and ETA use
  ``time.perf_counter`` (duration measurement), never wall-clock time.
"""

from __future__ import annotations

import sys
import time
from typing import TYPE_CHECKING, Callable, Optional, TextIO

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.engine import FluidEngine

#: The engine calls its progress hook every this many events; chosen so
#: even the 1k-job replay ticks many times per second while the per-event
#: cost stays a single modulo on an already-local counter.
DEFAULT_PROGRESS_EVERY = 20_000


class ProgressReporter:
    """Throttled stderr heartbeat; see the module docstring."""

    def __init__(
        self,
        label: str = "run",
        total_jobs: "Optional[int]" = None,
        stream: "Optional[TextIO]" = None,
        min_interval_s: float = 0.5,
    ) -> None:
        self.label = label
        self.total_jobs = total_jobs
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self.jobs_done = 0
        self._started = time.perf_counter()
        self._last_emit = self._started - min_interval_s  # emit immediately
        self._lines_emitted = 0
        # Events from engines that have already finished, plus the live
        # engine's running count.  Engines are recreated per simulation,
        # so we fold a finished engine's total into the base when a new
        # engine identity shows up.
        self._events_base = 0
        self._live_engine: "Optional[FluidEngine]" = None
        self._live_events = 0
        self._sim_now = 0.0

    # -- tick sources -------------------------------------------------- #

    def engine_tick(self, engine: "FluidEngine") -> None:
        """Periodic callback from the fluid engine's event loop."""
        if engine is not self._live_engine:
            self._events_base += self._live_events
            self._live_engine = engine
        self._live_events = engine.events_processed
        self._sim_now = engine.now
        self._maybe_emit()

    def job_done(self) -> None:
        """A serial run finished one job."""
        self.jobs_done += 1
        self._maybe_emit()

    def shard_done(self, num_jobs: int) -> None:
        """A parallel-replay shard finished ``num_jobs`` jobs."""
        self.jobs_done += num_jobs
        # Shard workers run in other processes; their engine events are
        # not visible here, so the heartbeat reports job throughput.
        self._maybe_emit(force=True)

    def close(self) -> None:
        """Emit a final summary line (only if anything was reported)."""
        if self._lines_emitted or self.jobs_done:
            self._emit(final=True)

    # -- rendering ----------------------------------------------------- #

    @property
    def events_total(self) -> int:
        return self._events_base + self._live_events

    def _maybe_emit(self, force: bool = False) -> None:
        now = time.perf_counter()
        if not force and now - self._last_emit < self.min_interval_s:
            return
        self._emit(now=now)

    def _emit(self, now: "Optional[float]" = None, final: bool = False) -> None:
        if now is None:
            now = time.perf_counter()
        self._last_emit = now
        elapsed = max(now - self._started, 1e-9)
        events = self.events_total
        bits = []
        if self.total_jobs is not None:
            bits.append(f"{self.jobs_done}/{self.total_jobs} jobs")
        else:
            bits.append(f"{self.jobs_done} jobs")
        bits.append(f"{events:.3g} events ({events / elapsed:.3g}/s)")
        bits.append(f"t_sim={self._sim_now:.1f}s")
        eta = self._eta(elapsed)
        if final:
            bits.append(f"done in {elapsed:.1f}s")
        elif eta is not None:
            bits.append(f"eta {eta:.0f}s")
        self.stream.write(f"[progress] {self.label}: " + ", ".join(bits) + "\n")
        self.stream.flush()
        self._lines_emitted += 1

    def _eta(self, elapsed: float) -> "Optional[float]":
        if self.total_jobs is None or self.jobs_done <= 0:
            return None
        remaining = self.total_jobs - self.jobs_done
        if remaining <= 0:
            return 0.0
        return elapsed / self.jobs_done * remaining


def engine_hook(
    reporter: "Optional[ProgressReporter]",
) -> "Optional[Callable[[FluidEngine], None]]":
    """The engine-facing callback for ``reporter``, or None when off."""
    if reporter is None:
        return None
    return reporter.engine_tick
