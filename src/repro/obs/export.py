"""Trace exporters: Chrome trace-event JSON and JSON-lines spans.

The Chrome export is loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: stage spans get one row per stage, each node of
the cluster becomes its own process with counter tracks (busy
executors, NIC in/out, disk rate), and Algorithm 1's decision audit
lands on a dedicated ``scheduler`` track.  Timestamps are converted
from seconds to the format's microseconds.

Every export embeds a :class:`~repro.obs.manifest.RunManifest` and the
tracer's counters under ``otherData``, and
:func:`validate_chrome_trace` is the schema check CI runs against
emitted traces (valid JSON, known schema version, manifest present,
monotone ``ts``, pid/tid consistency with the name metadata).
"""

from __future__ import annotations

import io
import json
import pathlib
from typing import TYPE_CHECKING, Any, Mapping

from repro.obs.manifest import RunManifest, build_manifest
from repro.obs.tracer import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

#: Version stamp of the Chrome-trace layout written by this module.
TRACE_SCHEMA_VERSION = 1

#: Seconds -> trace-event microseconds.
_US = 1e6


def _track_ids(tracer: Tracer) -> tuple[dict[str, int], dict[tuple[str, str], int]]:
    """Assign stable integer pids/tids to track labels (appearance order)."""
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    for process, thread in tracer.tracks():
        if process not in pids:
            pids[process] = len(pids) + 1
        key = (process, thread)
        if key not in tids:
            tids[key] = sum(1 for p, _ in tids if p == process) + 1
    return pids, tids


def to_chrome_trace(
    tracer: Tracer, manifest: "RunManifest | None" = None
) -> dict:
    """Render a tracer's records as a Chrome trace-event document.

    When ``manifest`` is omitted a minimal one is built, so every
    export carries provenance unconditionally.
    """
    manifest = manifest or build_manifest()
    pids, tids = _track_ids(tracer)

    meta: list[dict] = []
    for process, pid in pids.items():
        meta.append({"ph": "M", "pid": pid, "tid": 0, "ts": 0,
                     "name": "process_name", "args": {"name": process}})
    for (process, thread), tid in tids.items():
        meta.append({"ph": "M", "pid": pids[process], "tid": tid, "ts": 0,
                     "name": "thread_name", "args": {"name": thread}})

    events: list[dict] = []
    for span in tracer.spans:
        pid = pids[span.track[0]]
        tid = tids[span.track]
        args = {"sid": span.span_id, "psid": span.parent_id}
        args.update(span.args)
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.cat,
            "ts": round(span.ts * _US),
            "dur": round(span.dur * _US),
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    for inst in tracer.instants:
        events.append({
            "ph": "i",
            "s": "t",
            "name": inst.name,
            "cat": inst.cat,
            "ts": round(inst.ts * _US),
            "pid": pids[inst.track[0]],
            "tid": tids[inst.track],
            "args": dict(inst.args),
        })
    for sample in tracer.samples:
        events.append({
            "ph": "C",
            "name": sample.name,
            "ts": round(sample.ts * _US),
            "pid": pids[sample.track[0]],
            "tid": tids[sample.track],
            "args": {"value": sample.value},
        })
    events.sort(key=lambda e: e["ts"])

    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema_version": TRACE_SCHEMA_VERSION,
            "manifest": manifest.to_dict(),
            "counters": tracer.counters.as_dict(),
        },
    }


def write_chrome_trace(
    path: "str | pathlib.Path",
    tracer: Tracer,
    manifest: "RunManifest | None" = None,
) -> dict:
    """Write the Chrome trace to ``path``; returns the document."""
    doc = to_chrome_trace(tracer, manifest)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc


def read_chrome_trace(path: "str | pathlib.Path") -> dict:
    """Load a Chrome trace-event document written by this module."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object at top level")
    return doc


# ---------------------------------------------------------------------- #
# schema validation
# ---------------------------------------------------------------------- #

def validate_chrome_trace(doc: Any, require_manifest: bool = True) -> list[str]:
    """Schema-check a Chrome trace document; returns all violations.

    An empty list means the trace is valid.  Checks: structure and
    schema version, manifest presence (seed + config hash), numeric
    non-negative ``ts``/``dur``, monotone non-decreasing ``ts`` across
    non-metadata events, and that every pid/tid used by an event is
    declared by ``process_name``/``thread_name`` metadata.
    """
    errors: list[str] = []
    if not isinstance(doc, Mapping):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]

    other = doc.get("otherData")
    if not isinstance(other, Mapping):
        errors.append("missing 'otherData'")
        other = {}
    version = other.get("schema_version")
    if version != TRACE_SCHEMA_VERSION:
        errors.append(f"unknown schema_version {version!r} "
                      f"(expected {TRACE_SCHEMA_VERSION})")
    if require_manifest:
        manifest = other.get("manifest")
        if not isinstance(manifest, Mapping):
            errors.append("missing run manifest in 'otherData'")
        else:
            if "seed" not in manifest:
                errors.append("manifest lacks a 'seed' field")
            if not manifest.get("config_hash"):
                errors.append("manifest lacks a 'config_hash' field")

    procs: set[int] = set()
    threads: set[tuple[int, int]] = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, Mapping) or "ph" not in ev:
            errors.append(f"event {i}: not an object with a 'ph' field")
            continue
        if ev["ph"] == "M":
            if ev.get("name") == "process_name":
                procs.add(ev.get("pid"))
            elif ev.get("name") == "thread_name":
                threads.add((ev.get("pid"), ev.get("tid")))

    prev_ts = None
    for i, ev in enumerate(events):
        if not isinstance(ev, Mapping) or ev.get("ph") == "M":
            continue
        ph = ev.get("ph")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"event {i}: bad ts {ts!r}")
            continue
        if prev_ts is not None and ts < prev_ts:
            errors.append(f"event {i}: ts {ts} < previous {prev_ts} (not sorted)")
        prev_ts = ts
        if not ev.get("name"):
            errors.append(f"event {i}: missing name")
        pid = ev.get("pid")
        if pid not in procs:
            errors.append(f"event {i}: pid {pid!r} has no process_name metadata")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event {i}: bad dur {dur!r}")
            if (pid, ev.get("tid")) not in threads:
                errors.append(f"event {i}: tid {ev.get('tid')!r} has no "
                              "thread_name metadata")
        elif ph == "C":
            value = (ev.get("args") or {}).get("value")
            if not isinstance(value, (int, float)):
                errors.append(f"event {i}: counter without numeric args.value")
        elif ph not in ("i", "I"):
            errors.append(f"event {i}: unsupported phase {ph!r}")
    return errors


# ---------------------------------------------------------------------- #
# JSON-lines spans
# ---------------------------------------------------------------------- #

def write_spans_jsonl(
    destination: "str | pathlib.Path | io.TextIOBase",
    tracer: Tracer,
    manifest: "RunManifest | None" = None,
) -> int:
    """Dump spans as JSON lines (manifest first); returns span count."""
    if isinstance(destination, (str, pathlib.Path)):
        with open(destination, "w", encoding="utf-8") as fh:
            return write_spans_jsonl(fh, tracer, manifest)
    manifest = manifest or build_manifest()
    destination.write(json.dumps({"type": "manifest", **manifest.to_dict()}) + "\n")
    destination.write(json.dumps(
        {"type": "counters", **tracer.counters.as_dict()}) + "\n")
    count = 0
    for span in sorted(tracer.spans, key=lambda s: (s.ts, s.span_id)):
        destination.write(json.dumps({"type": "span", **span.to_dict()}) + "\n")
        count += 1
    return count


def read_spans_jsonl(
    source: "str | pathlib.Path | io.TextIOBase",
) -> tuple["RunManifest | None", list[Span]]:
    """Parse a JSON-lines span dump back into (manifest, spans)."""
    if isinstance(source, (str, pathlib.Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_spans_jsonl(fh)
    manifest: "RunManifest | None" = None
    spans: list[Span] = []
    for lineno, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            kind = record.get("type")
            if kind == "manifest":
                manifest = RunManifest.from_dict(record)
            elif kind == "span":
                spans.append(Span.from_dict(record))
            elif kind != "counters":
                raise ValueError(f"unknown record type {kind!r}")
        except (KeyError, ValueError, TypeError) as exc:
            raise ValueError(f"malformed span line {lineno}: {line!r}") from exc
    return manifest, spans
