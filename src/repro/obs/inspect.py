"""Offline trace inspection: span trees and decision-audit summaries.

Consumes the Chrome trace-event documents written by
:mod:`repro.obs.export` and reconstructs the logical structures the
emitters recorded: the per-stage phase span tree, Algorithm 1's
decision audit (bounds, candidates, predicted makespans, chosen
delay), and the final delay tables — which must match, stage for
stage, the table ``repro schedule`` prints for the same workload.
Backs the ``repro inspect`` CLI subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass
class SpanNode:
    """One span with its reconstructed children (via sid/psid args)."""

    sid: int
    name: str
    cat: str
    ts: float
    dur: float
    args: dict
    children: "list[SpanNode]" = field(default_factory=list)


def _span_events(doc: Mapping[str, Any]) -> list[dict]:
    return [
        ev for ev in doc.get("traceEvents", ())
        if isinstance(ev, Mapping) and ev.get("ph") == "X"
    ]


def span_nodes(doc: Mapping[str, Any]) -> list[SpanNode]:
    """Rebuild the logical span tree; returns root nodes in ts order.

    Spans exported without ids (foreign traces) become roots.
    """
    nodes: dict[int, SpanNode] = {}
    order: list[tuple[dict, SpanNode]] = []
    for ev in _span_events(doc):
        args = dict(ev.get("args") or {})
        sid = args.pop("sid", 0)
        args.pop("psid", None)
        node = SpanNode(
            sid=int(sid),
            name=str(ev.get("name", "")),
            cat=str(ev.get("cat", "")),
            ts=float(ev.get("ts", 0)) / 1e6,
            dur=float(ev.get("dur", 0)) / 1e6,
            args=args,
        )
        if sid:
            nodes[int(sid)] = node
        order.append((ev, node))

    roots: list[SpanNode] = []
    for ev, node in order:
        psid = (ev.get("args") or {}).get("psid", 0)
        parent = nodes.get(int(psid)) if psid else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.ts, n.sid))
    roots.sort(key=lambda n: (n.ts, n.sid))
    return roots


def decision_audits(doc: Mapping[str, Any]) -> list[dict]:
    """All decision-audit records (one per stage Algorithm 1 scanned)."""
    audits = []
    for ev in _span_events(doc):
        audit = (ev.get("args") or {}).get("audit")
        if isinstance(audit, Mapping):
            audits.append(dict(audit))
    return audits


def delay_tables(doc: Mapping[str, Any]) -> dict[str, dict[str, float]]:
    """Final delay tables, keyed by job id.

    Read from the ``schedule`` instants Algorithm 1 emits at
    termination — these reflect fallback and refinement, so they equal
    the :class:`~repro.core.schedule.DelaySchedule` the caller got.
    """
    tables: dict[str, dict[str, float]] = {}
    for ev in doc.get("traceEvents", ()):
        if not isinstance(ev, Mapping) or ev.get("ph") not in ("i", "I"):
            continue
        if ev.get("name") != "schedule":
            continue
        args = ev.get("args") or {}
        job_id = args.get("job_id")
        delays = args.get("delays")
        if isinstance(job_id, str) and isinstance(delays, Mapping):
            tables[job_id] = {str(s): float(x) for s, x in delays.items()}
    return tables


def manifest_of(doc: Mapping[str, Any]) -> "dict | None":
    other = doc.get("otherData")
    if isinstance(other, Mapping) and isinstance(other.get("manifest"), Mapping):
        return dict(other["manifest"])
    return None


def counters_of(doc: Mapping[str, Any]) -> dict:
    other = doc.get("otherData")
    if isinstance(other, Mapping) and isinstance(other.get("counters"), Mapping):
        return dict(other["counters"])
    return {"counters": {}, "gauges": {}}


def counter_track_summary(doc: Mapping[str, Any]) -> "list[dict]":
    """Per-track statistics for the counter samples in a trace.

    Groups the ``ph: "C"`` events by (track label, counter name), where
    the track label is resolved through the ``process_name`` /
    ``thread_name`` metadata events (pid → process, (pid, tid) →
    thread), and summarizes each group's values as min/mean/max/last
    (last = value of the latest-``ts`` sample; ties keep file order).
    Returns a list of dicts sorted by (track, counter) — the payload
    behind ``repro inspect --counters``.
    """
    processes: dict = {}
    threads: dict = {}
    for ev in doc.get("traceEvents", ()):
        if not isinstance(ev, Mapping) or ev.get("ph") != "M":
            continue
        args = ev.get("args") or {}
        label = args.get("name")
        if not isinstance(label, str):
            continue
        if ev.get("name") == "process_name":
            processes[ev.get("pid")] = label
        elif ev.get("name") == "thread_name":
            threads[(ev.get("pid"), ev.get("tid"))] = label

    groups: "dict[tuple[str, str], list[tuple[float, float]]]" = {}
    for ev in doc.get("traceEvents", ()):
        if not isinstance(ev, Mapping) or ev.get("ph") != "C":
            continue
        args = ev.get("args") or {}
        value = args.get("value")
        if not isinstance(value, (int, float)):
            continue
        pid, tid = ev.get("pid"), ev.get("tid")
        proc = processes.get(pid)
        thread = threads.get((pid, tid))
        if proc and thread:
            track = f"{proc}/{thread}"
        else:
            track = proc or thread or f"pid {pid}"
        name = str(ev.get("name", ""))
        ts = float(ev.get("ts", 0)) / 1e6
        groups.setdefault((track, name), []).append((ts, float(value)))

    summary = []
    for (track, name), samples in sorted(groups.items()):
        values = [v for _, v in samples]
        last = max(enumerate(samples), key=lambda iv: (iv[1][0], iv[0]))[1][1]
        summary.append(
            {
                "track": track,
                "counter": name,
                "samples": len(values),
                "min": min(values),
                "mean": sum(values) / len(values),
                "max": max(values),
                "last": last,
                "t_first": samples[0][0],
                "t_last": max(ts for ts, _ in samples),
            }
        )
    return summary


def render_counter_summary(doc: Mapping[str, Any]) -> str:
    """Text table of :func:`counter_track_summary`."""
    rows = counter_track_summary(doc)
    if not rows:
        return "no counter tracks in trace"
    lines = [
        f"counter tracks ({len(rows)} series):",
        f"  {'track':28s} {'counter':16s} {'n':>5s} "
        f"{'min':>12s} {'mean':>12s} {'max':>12s} {'last':>12s}",
    ]
    for r in rows:
        lines.append(
            f"  {r['track']:28s} {r['counter']:16s} {r['samples']:>5d} "
            f"{r['min']:>12.6g} {r['mean']:>12.6g} {r['max']:>12.6g} "
            f"{r['last']:>12.6g}"
        )
    return "\n".join(lines)


def _render_node(node: SpanNode, indent: int, lines: list[str]) -> None:
    pad = "  " * indent
    lines.append(
        f"{pad}{node.name:20s} [{node.ts:10.3f} .. {node.ts + node.dur:10.3f}] "
        f"{node.dur:9.3f} s  ({node.cat})"
    )
    for child in node.children:
        _render_node(child, indent + 1, lines)


def render_summary(doc: Mapping[str, Any], max_stages: int = 50) -> str:
    """Human-readable span-tree + decision-audit summary of a trace."""
    lines: list[str] = []

    manifest = manifest_of(doc)
    if manifest:
        lines.append(
            f"manifest: repro {manifest.get('version')} | "
            f"python {manifest.get('python')} | seed {manifest.get('seed')} | "
            f"config {str(manifest.get('config_hash', ''))[:12]}"
        )
        if manifest.get("workloads"):
            lines.append("workloads: " + ", ".join(
                f"{jid} ({fp})" for jid, fp in sorted(manifest["workloads"].items())
            ))
        lines.append("")

    roots = span_nodes(doc)
    shown = 0
    lines.append(f"span tree ({len(roots)} root span(s)):")
    for root in roots:
        if root.cat == "decision":
            continue
        if shown >= max_stages:
            lines.append(f"  ... {len(roots) - shown} more root span(s) elided")
            break
        _render_node(root, 1, lines)
        shown += 1

    audits = decision_audits(doc)
    if audits:
        lines.append("")
        lines.append(f"decision audit ({len(audits)} stage scan(s)):")
        lines.append(
            f"  {'stage':16s} {'bounds':>18s} {'evaluated':>9s} "
            f"{'pruned':>6s} {'chosen':>8s} {'makespan':>10s}"
        )
        for a in audits:
            lo, hi = a.get("bounds", (0.0, 0.0))
            lines.append(
                f"  {a.get('stage_id', '?'):16s} "
                f"[{lo:7.1f},{hi:8.1f}] "
                f"{len(a.get('candidates', ())):>9d} "
                f"{a.get('pruned', 0):>6d} "
                f"{a.get('chosen_delay', 0.0):>8.1f} "
                f"{a.get('best_makespan', float('nan')):>10.1f}"
            )

    tables = delay_tables(doc)
    for job_id, table in sorted(tables.items()):
        lines.append("")
        lines.append(f"delay table for {job_id}:")
        for sid, x in sorted(table.items()):
            lines.append(f"  {sid:16s} {x:8.1f} s")

    counters = counters_of(doc)
    flat = {**counters.get("counters", {}), **counters.get("gauges", {})}
    if flat:
        lines.append("")
        lines.append("counters/gauges:")
        for name in sorted(flat):
            lines.append(f"  {name:40s} {flat[name]:.6g}")
    return "\n".join(lines)
