"""LiveHub: the bus→registry aggregator behind the HTTP surface.

The hub subscribes to a :class:`~repro.obs.live.bus.TelemetryBus` and
folds every run event into a :class:`~repro.obs.live.registry
.MetricsRegistry` (counters/gauges/histograms for ``/metrics``) and a
per-run snapshot dict (for ``/runs/<id>``).  It is the only component
that knows both vocabularies; publishers know events, the server knows
HTTP.

``/metrics`` output is the live registry exposition concatenated with
the PR-4 report exporter's families once final reports are attached
via :meth:`set_reports` — which is what makes the post-run scrape
value-identical to ``repro report --prometheus``: both render the
*same* report objects through the *same* exporter.

Live families use the ``repro_live_`` prefix; report families use the
existing ``repro_`` names.  The prefixes are disjoint, so the merged
exposition has no duplicate families and exactly one ``# EOF``.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping, Optional

from repro.obs.live.bus import TelemetryBus
from repro.obs.live.registry import DEFAULT_JCT_BUCKETS, MetricsRegistry


class LiveHub:
    """Aggregates bus events into metrics and per-run JSON snapshots."""

    def __init__(
        self,
        bus: "Optional[TelemetryBus]" = None,
        registry: "Optional[MetricsRegistry]" = None,
        jct_buckets: "Optional[tuple[float, ...]]" = None,
    ) -> None:
        self.bus = bus if bus is not None else TelemetryBus()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.RLock()
        self._runs: "dict[str, dict]" = {}
        self._reports: "Optional[Mapping[str, Any]]" = None

        reg = self.registry
        self._jobs = reg.counter(
            "repro_live_jobs_completed",
            "Jobs completed per run (serial completions + shard merges).",
        )
        self._events = reg.counter(
            "repro_live_engine_events",
            "Cumulative fluid-engine events processed per run.",
        )
        self._faults = reg.counter(
            "repro_live_faults",
            "Fault-injection events by kind (crash, brownout, retry, ...).",
        )
        self._schedules = reg.counter(
            "repro_live_schedules_computed",
            "Scheduling decisions (Algorithm 1 tables and baselines).",
        )
        self._scrapes = reg.counter(
            "repro_live_scrapes",
            "HTTP scrapes served by endpoint.",
        )
        self._sim_clock = reg.gauge(
            "repro_live_sim_clock_seconds",
            "Current simulated clock per run.",
        )
        self._active = reg.gauge(
            "repro_live_runs_active",
            "Runs started and not yet finished.",
        )
        self._jct = reg.histogram(
            "repro_live_job_jct_seconds",
            "Per-job completion times observed during replay.",
            buckets=(
                DEFAULT_JCT_BUCKETS if jct_buckets is None
                else tuple(jct_buckets)
            ),
        )
        self._throughput = reg.series(
            "repro_live_jobs_throughput",
            "Recent (elapsed_s, jobs_done) samples per run.",
        )
        self._critical = reg.gauge(
            "repro_live_critical_seconds",
            "Critical-path seconds per blame category and run.",
        )
        self._critical_makespan = reg.gauge(
            "repro_live_critical_makespan_seconds",
            "Blamed makespan per run (categories sum to this exactly).",
        )
        self._critical_jobs = reg.gauge(
            "repro_live_critical_job_seconds",
            "Top-K most-blamed jobs by critical-path time per run.",
        )
        self._svc_submitted = reg.counter(
            "repro_live_service_submitted",
            "Jobs admitted into the service's pending queue.",
        )
        self._svc_rejected = reg.counter(
            "repro_live_service_rejected",
            "Submissions shed by admission control, by typed reason.",
        )
        self._svc_cancelled = reg.counter(
            "repro_live_service_cancelled",
            "Jobs cancelled while queued or running.",
        )
        self._svc_failed = reg.counter(
            "repro_live_service_failed",
            "Dispatched jobs that exhausted their fault retry budget.",
        )
        self._svc_queue = reg.gauge(
            "repro_live_service_queue_depth",
            "Jobs currently waiting in the service's pending queue.",
        )
        self._svc_running = reg.gauge(
            "repro_live_service_running",
            "Jobs currently occupying a dispatch slot.",
        )
        self._svc_draining = reg.gauge(
            "repro_live_service_draining",
            "1 while the service refuses new work, 2 once fully drained.",
        )
        self.bus.subscribe(self._on_event)

    # -- event folding ------------------------------------------------- #

    def _run(self, run_id: str) -> dict:
        run = self._runs.get(run_id)
        if run is None:
            run = self._runs[run_id] = {
                "run": run_id,
                "status": "running",
                "jobs_done": 0,
                "total_jobs": None,
                "events_total": 0,
                "t_sim": 0.0,
                "faults": {},
                "schedules": 0,
                "started_elapsed_s": None,
                "finished_elapsed_s": None,
            }
        return run

    def _on_event(self, event: dict) -> None:
        type_ = event.get("type")
        run_id = str(event.get("run", "run"))
        with self._lock:
            run = self._run(run_id)
            if type_ == "run_started":
                run["status"] = "running"
                run["started_elapsed_s"] = event.get("elapsed_s")
                if event.get("total_jobs") is not None:
                    run["total_jobs"] = event["total_jobs"]
                for key in ("label", "scheduler", "workload", "manifest"):
                    if key in event:
                        run[key] = event[key]
                self._active.add(1.0)
            elif type_ == "tick":
                events_total = int(event.get("events_total", 0))
                t_sim = float(event.get("t_sim", 0.0))
                run["events_total"] = max(run["events_total"], events_total)
                run["t_sim"] = t_sim
                self._events.inc_to(float(events_total), run=run_id)
                self._sim_clock.set(t_sim, run=run_id)
            elif type_ == "job":
                run["jobs_done"] = int(event.get("jobs_done", run["jobs_done"]))
                if event.get("total_jobs") is not None:
                    run["total_jobs"] = event["total_jobs"]
                self._jobs.inc(1.0, run=run_id)
                self._throughput.append(
                    float(event.get("elapsed_s", 0.0)),
                    float(run["jobs_done"]), run=run_id,
                )
                jct = event.get("jct")
                if jct is not None:
                    self._jct.observe(float(jct), run=run_id)
            elif type_ == "shard":
                run["jobs_done"] = int(event.get("jobs_done", run["jobs_done"]))
                if event.get("total_jobs") is not None:
                    run["total_jobs"] = event["total_jobs"]
                self._jobs.inc(float(event.get("num_jobs", 0)), run=run_id)
                self._throughput.append(
                    float(event.get("elapsed_s", 0.0)),
                    float(run["jobs_done"]), run=run_id,
                )
            elif type_ == "jcts":
                for jct in event.get("jcts", ()):
                    self._jct.observe(float(jct), run=run_id)
            elif type_ == "fault":
                kind = str(event.get("kind", "unknown"))
                run["faults"][kind] = run["faults"].get(kind, 0) + 1
                self._faults.inc(1.0, run=run_id, kind=kind)
            elif type_ == "blame":
                label = str(event.get("label", run_id))
                run.setdefault("blame", {})[label] = {
                    "makespan": float(event.get("makespan", 0.0)),
                    "categories": dict(event.get("categories", {})),
                }
                self._critical_makespan.set(
                    float(event.get("makespan", 0.0)), run=label
                )
                for cat, seconds in (event.get("categories") or {}).items():
                    self._critical.set(
                        float(seconds), run=label, category=str(cat)
                    )
                for jid, jct in event.get("top_jobs") or ():
                    self._critical_jobs.set(
                        float(jct), run=label, job=str(jid)
                    )
            elif type_ == "schedule":
                run["schedules"] += 1
                scheduler = str(event.get("scheduler", "unknown"))
                self._schedules.inc(1.0, run=run_id, scheduler=scheduler)
            elif type_ == "submitted":
                svc = self._service(run)
                svc["submitted"] += 1
                self._svc_submitted.inc(1.0, run=run_id)
                self._fold_occupancy(svc, event, run_id)
            elif type_ == "rejected":
                svc = self._service(run)
                svc["rejected"] += 1
                reason = str(event.get("reason", "unknown"))
                svc["rejected_by_reason"][reason] = (
                    svc["rejected_by_reason"].get(reason, 0) + 1
                )
                self._svc_rejected.inc(1.0, run=run_id, reason=reason)
                self._fold_occupancy(svc, event, run_id)
            elif type_ == "cancelled":
                svc = self._service(run)
                svc["cancelled"] += 1
                self._svc_cancelled.inc(1.0, run=run_id)
                self._fold_occupancy(svc, event, run_id)
            elif type_ == "failed":
                svc = self._service(run)
                svc["failed"] += 1
                self._svc_failed.inc(1.0, run=run_id)
                self._fold_occupancy(svc, event, run_id)
            elif type_ == "draining":
                svc = self._service(run)
                svc["draining"] = True
                self._svc_draining.set(1.0, run=run_id)
                self._fold_occupancy(svc, event, run_id)
            elif type_ == "drained":
                svc = self._service(run)
                svc["draining"] = True
                svc["drained"] = True
                for key in ("completed", "failed", "cancelled", "rejected"):
                    if key in event:
                        svc[key] = int(event[key])
                svc["queue_depth"] = 0
                svc["running"] = 0
                self._svc_draining.set(2.0, run=run_id)
                self._svc_queue.set(0.0, run=run_id)
                self._svc_running.set(0.0, run=run_id)
            elif type_ == "run_finished":
                if run["status"] != "finished":
                    run["status"] = "finished"
                    run["finished_elapsed_s"] = event.get("elapsed_s")
                    run["jobs_done"] = int(
                        event.get("jobs_done", run["jobs_done"])
                    )
                    events_total = int(event.get("events_total", 0))
                    run["events_total"] = max(run["events_total"], events_total)
                    self._events.inc_to(float(events_total), run=run_id)
                    self._active.add(-1.0)

    def _service(self, run: dict) -> dict:
        """Lazily attach the service-lifecycle subdict to a run snapshot."""
        svc = run.get("service")
        if svc is None:
            svc = run["service"] = {
                "submitted": 0,
                "rejected": 0,
                "rejected_by_reason": {},
                "cancelled": 0,
                "failed": 0,
                "queue_depth": 0,
                "running": 0,
                "draining": False,
                "drained": False,
            }
        return svc

    def _fold_occupancy(self, svc: dict, event: dict, run_id: str) -> None:
        """Mirror an event's queue/slot occupancy into snapshot + gauges."""
        if "queue_depth" in event:
            svc["queue_depth"] = int(event["queue_depth"])
            self._svc_queue.set(float(event["queue_depth"]), run=run_id)
        if "running" in event:
            svc["running"] = int(event["running"])
            self._svc_running.set(float(event["running"]), run=run_id)

    # -- HTTP-facing reads --------------------------------------------- #

    def run_ids(self) -> "list[str]":
        with self._lock:
            return sorted(self._runs)

    def run_snapshot(self, run_id: str) -> "Optional[dict]":
        with self._lock:
            run = self._runs.get(run_id)
            if run is None:
                return None
            snapshot = dict(run)
            snapshot["faults"] = dict(run["faults"])
            if "service" in run:
                snapshot["service"] = dict(run["service"])
                snapshot["service"]["rejected_by_reason"] = dict(
                    run["service"]["rejected_by_reason"]
                )
        snapshot["throughput"] = self._throughput.points(run=run_id)
        snapshot["last_seq"] = self.bus.last_seq
        return snapshot

    def finish_run(self, run_id: str, payload: "Optional[Mapping[str, Any]]" = None) -> None:
        """Attach the final result payload to a run's snapshot."""
        with self._lock:
            run = self._run(run_id)
            if payload is not None:
                run["result"] = dict(payload)

    def set_reports(self, reports: "Mapping[str, Any]") -> None:
        """Attach final InterleavingReports; /metrics then includes them."""
        with self._lock:
            self._reports = dict(reports)

    def count_scrape(self, endpoint: str) -> None:
        self._scrapes.inc(1.0, endpoint=endpoint)

    def render_metrics(self) -> str:
        """Full /metrics exposition: live families + final report families."""
        with self._lock:
            reports = self._reports
        text = self.registry.render_openmetrics(eof=False)
        if reports:
            # Lazy import: obs.metrics sits above this module in the
            # package graph (obs/__init__ imports progress -> live.bus).
            from repro.obs.metrics import reports_to_openmetrics

            return text + reports_to_openmetrics(reports)
        return text + "# EOF\n"

    def healthz(self) -> dict:
        with self._lock:
            running = sum(
                1 for r in self._runs.values() if r["status"] == "running"
            )
            total = len(self._runs)
        return {
            "status": "ok",
            "runs": total,
            "running": running,
            "last_seq": self.bus.last_seq,
        }
