"""Run-lifecycle event bus and the publisher facade the runners drive.

The bus is the single telemetry source: engine ticks, job completions,
shard merges, scheduler decisions, and fault-injection events all pass
through :meth:`TelemetryBus.publish` as small dicts.  Subscribers —
the stderr progress renderer, the :class:`~repro.obs.live.hub.LiveHub`
metrics aggregator, ``/events`` HTTP streams, the structured logger —
see the same ordered stream.

Events never influence the simulation: publishers only *read* engine
state, so results are bit-identical with telemetry on or off.  Event
payloads carry cumulative values (``events_total``, ``t_sim``) rather
than object identities, keeping them JSON-safe and replayable.

:class:`TelemetryPublisher` implements the progress protocol the
runners already speak (``engine_tick`` / ``job_done`` / ``shard_done``
/ ``close``) and is the superclass of the refactored
:class:`~repro.obs.progress.ProgressReporter`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Iterable, Mapping, Optional

#: Event types published by :class:`TelemetryPublisher`.
EVENT_TYPES = (
    "run_started",
    "schedule",
    "tick",
    "job",
    "shard",
    "jcts",
    "fault",
    "blame",
    "submitted",
    "rejected",
    "cancelled",
    "failed",
    "draining",
    "drained",
    "run_finished",
)

#: Event types after which a stream has nothing more to say: the run
#: (or service) is over and clients may hang up instead of reconnecting.
TERMINAL_EVENT_TYPES = frozenset({"run_finished", "drained"})


class TelemetryBus:
    """Ordered, bounded-history pub/sub channel for run events.

    Publishing assigns a monotone ``seq`` and a wall-elapsed stamp
    (``perf_counter`` relative to bus creation — flow-sanctioned,
    diagnostics only), appends to a bounded history ring, and delivers
    to subscribers under the lock so late subscribers can atomically
    replay history and then receive everything newer (:meth:`tap`).

    Subscriber callbacks run on the publishing thread and must be
    cheap and non-blocking; the HTTP layer bridges to per-client
    queues for exactly this reason.
    """

    def __init__(self, history: int = 4096) -> None:
        if history <= 0:
            raise ValueError(f"history must be positive, got {history}")
        self._lock = threading.RLock()
        self._subscribers: "list[Callable[[dict], None]]" = []
        self._history: deque = deque(maxlen=history)
        self._seq = 0
        self._t0 = time.perf_counter()

    def publish(self, type_: str, **fields: Any) -> dict:
        """Stamp, record, and fan out one event; returns the event dict."""
        with self._lock:
            self._seq += 1
            event = {
                "seq": self._seq,
                "elapsed_s": round(time.perf_counter() - self._t0, 6),
                "type": type_,
            }
            event.update(fields)
            self._history.append(event)
            subscribers = list(self._subscribers)
            for callback in subscribers:
                callback(event)
        return event

    def subscribe(self, callback: Callable[[dict], None]) -> None:
        with self._lock:
            if callback not in self._subscribers:
                self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[dict], None]) -> None:
        with self._lock:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

    def tap(
        self, callback: Callable[[dict], None], since: int = 0
    ) -> "list[dict]":
        """Atomically subscribe and return history newer than ``since``.

        The returned backlog plus subsequent callback deliveries form
        a gapless, duplicate-free sequence — the property ``/events``
        clients rely on.
        """
        with self._lock:
            backlog = [ev for ev in self._history if ev["seq"] > since]
            self.subscribe(callback)
            return backlog

    def events_since(self, since: int = 0, limit: Optional[int] = None) -> "list[dict]":
        with self._lock:
            events = [ev for ev in self._history if ev["seq"] > since]
        if limit is not None and limit >= 0:
            events = events[-limit:]
        return events

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq


class TelemetryPublisher:
    """Progress-protocol implementation that publishes onto a bus.

    Runners call the same four methods they always have; each becomes
    one bus event.  When no one subscribes, a publish is a lock plus a
    dict build — the "one branch per event when disabled" budget is
    enforced upstream (runners pass ``progress=None`` when telemetry
    is off, so these methods are never even called).

    ``engine_tick`` folds engine identity exactly like the historical
    ProgressReporter: the fluid engine is recreated per job, so
    completed-engine totals accumulate into ``_events_base`` and the
    live engine contributes on top.  The fold happens here, at the
    publish site, so events carry only cumulative numbers.
    """

    def __init__(
        self,
        bus: Optional[TelemetryBus] = None,
        label: str = "run",
        total_jobs: Optional[int] = None,
        run_id: Optional[str] = None,
    ) -> None:
        self.bus = bus if bus is not None else TelemetryBus()
        self.label = label
        self.total_jobs = total_jobs
        self.run_id = run_id if run_id is not None else label
        self.jobs_done = 0
        self.t_sim = 0.0
        self._events_base = 0
        self._live_events = 0
        self._live_engine: Any = None
        self._closed = False

    # -- progress protocol -------------------------------------------- #

    def engine_tick(self, engine: Any) -> None:
        """Fluid-engine progress hook (every ~20k events)."""
        if engine is not self._live_engine:
            self._events_base += self._live_events
            self._live_engine = engine
            self._live_events = 0
        self._live_events = engine.events_processed
        self.t_sim = float(engine.now)
        self.bus.publish(
            "tick",
            run=self.run_id,
            events_total=self.events_total,
            t_sim=self.t_sim,
        )

    def job_done(self, jct: Optional[float] = None) -> None:
        self.jobs_done += 1
        fields: "dict[str, Any]" = {
            "run": self.run_id,
            "jobs_done": self.jobs_done,
            "total_jobs": self.total_jobs,
        }
        if jct is not None:
            fields["jct"] = float(jct)
        self.bus.publish("job", **fields)

    def shard_done(self, num_jobs: int) -> None:
        self.jobs_done += int(num_jobs)
        self.bus.publish(
            "shard",
            run=self.run_id,
            num_jobs=int(num_jobs),
            jobs_done=self.jobs_done,
            total_jobs=self.total_jobs,
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.bus.publish(
            "run_finished",
            run=self.run_id,
            jobs_done=self.jobs_done,
            events_total=self.events_total,
            t_sim=self.t_sim,
        )

    # -- richer publishers -------------------------------------------- #

    def run_started(self, **fields: Any) -> None:
        self.bus.publish(
            "run_started",
            run=self.run_id,
            label=self.label,
            total_jobs=self.total_jobs,
            **fields,
        )

    def schedule_computed(self, scheduler: str, info: Mapping[str, Any]) -> None:
        """Publish an Algorithm-1 (or baseline) scheduling decision."""
        fields: "dict[str, Any]" = {"run": self.run_id, "scheduler": scheduler}
        schedule = info.get("schedule") if info else None
        if schedule is not None:
            delays = getattr(schedule, "delays", None)
            if delays:
                fields["stages_delayed"] = sum(
                    1 for d in delays.values() if d > 0
                )
                fields["total_delay_s"] = float(sum(delays.values()))
            predicted = getattr(schedule, "predicted_makespan", None)
            baseline = getattr(schedule, "baseline_makespan", None)
            if predicted is not None:
                fields["predicted_makespan"] = float(predicted)
            if baseline is not None:
                fields["baseline_makespan"] = float(baseline)
        self.bus.publish("schedule", **fields)

    def observe_jcts(self, jcts: Iterable[float]) -> None:
        """Bulk JCT publication for the parallel-replay merge path."""
        values = [float(j) for j in jcts]
        if not values:
            return
        self.bus.publish(
            "jcts",
            run=self.run_id,
            count=len(values),
            jcts=values,
        )

    def fault_event(self, kind: str, fields: Mapping[str, Any]) -> None:
        """Fault-injection hook (crash/brownout/retry/...)."""
        self.bus.publish("fault", run=self.run_id, kind=kind, **fields)

    # -- service lifecycle --------------------------------------------- #

    def job_submitted(
        self, service_id: str, *, stages: int, queue_depth: int, running: int
    ) -> None:
        """One job admitted into the service's pending queue."""
        self.bus.publish(
            "submitted",
            run=self.run_id,
            service_id=service_id,
            stages=int(stages),
            queue_depth=int(queue_depth),
            running=int(running),
        )

    def job_rejected(
        self, service_id: str, reason: str, *, queue_depth: int, running: int
    ) -> None:
        """One submission shed by admission control (typed reason)."""
        self.bus.publish(
            "rejected",
            run=self.run_id,
            service_id=service_id,
            reason=reason,
            queue_depth=int(queue_depth),
            running=int(running),
        )

    def job_cancelled(
        self, service_id: str, *, was: str, queue_depth: int, running: int
    ) -> None:
        """A queued or running job cancelled by the caller."""
        self.bus.publish(
            "cancelled",
            run=self.run_id,
            service_id=service_id,
            was=was,
            queue_depth=int(queue_depth),
            running=int(running),
        )

    def job_failed(
        self,
        service_id: str,
        *,
        failure_time: float,
        retries: int,
        queue_depth: int,
        running: int,
    ) -> None:
        """A dispatched job exhausted its retry budget under faults."""
        self.bus.publish(
            "failed",
            run=self.run_id,
            service_id=service_id,
            failure_time=float(failure_time),
            retries=int(retries),
            queue_depth=int(queue_depth),
            running=int(running),
        )

    def drain_started(self, *, queue_depth: int, running: int) -> None:
        """The service stopped admitting; in-flight work continues."""
        self.bus.publish(
            "draining",
            run=self.run_id,
            queue_depth=int(queue_depth),
            running=int(running),
        )

    def drain_finished(
        self, *, completed: int, failed: int, cancelled: int, rejected: int
    ) -> None:
        """Terminal service event: the queue is empty and nothing runs."""
        self.bus.publish(
            "drained",
            run=self.run_id,
            completed=int(completed),
            failed=int(failed),
            cancelled=int(cancelled),
            rejected=int(rejected),
        )

    def blame_computed(
        self,
        label: str,
        categories: Mapping[str, float],
        makespan: float,
        top_jobs: "Iterable[tuple[str, float]]" = (),
    ) -> None:
        """Publish one run's critical-path blame decomposition.

        ``label`` is the per-scheduler blame label (e.g. ``fuxi``),
        distinct from the command-level ``run`` id; the LiveHub folds
        the categories into the ``repro_live_critical_*`` families.
        """
        self.bus.publish(
            "blame",
            run=self.run_id,
            label=label,
            makespan=float(makespan),
            categories={k: float(v) for k, v in categories.items()},
            top_jobs=[[jid, float(jct)] for jid, jct in top_jobs],
        )

    # -- accounting ---------------------------------------------------- #

    @property
    def events_total(self) -> int:
        return self._events_base + self._live_events


def fault_hook(
    publisher: "TelemetryPublisher | None",
) -> "Callable[[str, Mapping[str, Any]], None] | None":
    """Adapter: a publisher's fault callback, or None when telemetry is off.

    Mirrors :func:`repro.obs.progress.engine_hook` so call sites stay
    one expression.
    """
    if publisher is None:
        return None
    return publisher.fault_event
