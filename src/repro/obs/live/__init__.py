"""repro.obs.live — the live telemetry plane.

One bus, many consumers: runners publish run-lifecycle events through
:class:`TelemetryPublisher`; the stderr progress renderer, the
:class:`LiveHub` metrics aggregator, ``/events`` HTTP streams, and the
structured logger all subscribe to the same
:class:`TelemetryBus`.  :class:`LiveServer` exposes the hub over HTTP
(``/metrics`` OpenMetrics, ``/healthz``, ``/runs/<id>``, ``/events``);
``repro tail`` is the matching client.

Telemetry is observation-only by construction — publishers read
engine state but never feed anything back, so simulation results are
bit-identical with the plane on or off.
"""

from repro.obs.live.bus import (
    EVENT_TYPES,
    TelemetryBus,
    TelemetryPublisher,
    fault_hook,
)
from repro.obs.live.hub import LiveHub
from repro.obs.live.logging import StructuredLogger, bus_logger
from repro.obs.live.registry import (
    DEFAULT_JCT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    parse_openmetrics_text,
    validate_openmetrics_text,
)
from repro.obs.live.server import OPENMETRICS_CONTENT_TYPE, LiveServer
from repro.obs.live.tail import iter_events, normalize_url, render_event, tail

__all__ = [
    "EVENT_TYPES",
    "TelemetryBus",
    "TelemetryPublisher",
    "fault_hook",
    "LiveHub",
    "StructuredLogger",
    "bus_logger",
    "DEFAULT_JCT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
    "parse_openmetrics_text",
    "validate_openmetrics_text",
    "OPENMETRICS_CONTENT_TYPE",
    "LiveServer",
    "iter_events",
    "normalize_url",
    "render_event",
    "tail",
]
