"""Structured JSON logging correlated with run manifests and spans.

:class:`StructuredLogger` writes one JSON object per line to a stream
(stderr by default).  Every record carries:

* ``ts`` — wall-clock epoch seconds (logs are for humans and log
  shippers, so wall time is the right clock here; sanctioned for the
  flow analyzer via the inline pragma below),
* ``level`` / ``event`` / ``msg``,
* bound context fields — typically ``run`` and ``manifest`` (the
  deterministic run-manifest config hash from
  :mod:`repro.obs.manifest`), so every line of a run's log joins to
  its traces, reports, and metrics on one key,
* ``span`` — a correlation id; bus-driven records use the bus event's
  ``seq``, giving log lines a total order consistent with ``/events``.

:func:`bus_logger` adapts a logger into a bus subscriber so ``--serve
--log-json`` runs emit the same lifecycle stream to logs that HTTP
clients see on ``/events``.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Callable, Mapping, Optional, TextIO

_LEVELS = ("debug", "info", "warning", "error")


class StructuredLogger:
    """JSON-lines logger with bound correlation fields."""

    def __init__(
        self,
        stream: "Optional[TextIO]" = None,
        *,
        run: "Optional[str]" = None,
        manifest: "Optional[str]" = None,
        fields: "Optional[Mapping[str, Any]]" = None,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._bound: "dict[str, Any]" = {}
        if run is not None:
            self._bound["run"] = run
        if manifest is not None:
            self._bound["manifest"] = manifest
        if fields:
            self._bound.update(fields)

    def bind(self, **fields: Any) -> "StructuredLogger":
        """A child logger with extra bound fields (parent unchanged)."""
        child = StructuredLogger(self.stream)
        child._bound = {**self._bound, **fields}
        return child

    def log(
        self,
        level: str,
        event: str,
        msg: str = "",
        *,
        span: "Optional[int]" = None,
        **fields: Any,
    ) -> dict:
        if level not in _LEVELS:
            raise ValueError(f"unknown level {level!r}; use one of {_LEVELS}")
        record: "dict[str, Any]" = {
            # Wall time: log records must be joinable with external
            # systems' clocks, unlike simulation state.
            "ts": round(time.time(), 6),  # noqa: L001  # flow: allow[F001] log timestamps are wall-clock by design, never fed back into simulation
            "level": level,
            "event": event,
        }
        if msg:
            record["msg"] = msg
        record.update(self._bound)
        if span is not None:
            record["span"] = span
        record.update(fields)
        self.stream.write(json.dumps(record, sort_keys=True,
                                     default=str) + "\n")
        self.stream.flush()
        return record

    def debug(self, event: str, msg: str = "", **fields: Any) -> dict:
        return self.log("debug", event, msg, **fields)

    def info(self, event: str, msg: str = "", **fields: Any) -> dict:
        return self.log("info", event, msg, **fields)

    def warning(self, event: str, msg: str = "", **fields: Any) -> dict:
        return self.log("warning", event, msg, **fields)

    def error(self, event: str, msg: str = "", **fields: Any) -> dict:
        return self.log("error", event, msg, **fields)


def bus_logger(logger: StructuredLogger) -> "Callable[[dict], None]":
    """A bus subscriber that logs each event, spanned by its seq."""

    def _on_event(event: dict) -> None:
        fields = {
            k: v for k, v in event.items()
            if k not in ("seq", "type") and k not in logger._bound
        }
        logger.info(event.get("type", "event"), span=event.get("seq"),
                    **fields)

    return _on_event
