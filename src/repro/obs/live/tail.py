"""`repro tail` — a tiny client that pretty-prints a /events stream.

Connects to a live server's ``/events`` endpoint (JSON lines), renders
each event as a one-line human summary, and exits after ``--max``
events or when the server closes the stream.  ``--raw`` passes the
JSON through untouched (useful for piping into jq).

``--reconnect N`` makes the client survive dropped connections (a
restarted server, a flaky proxy): when the stream breaks mid-follow it
retries up to ``N`` times with doubling backoff capped at
:data:`MAX_BACKOFF_S`, resuming with ``since=<last seq>`` so no event
is duplicated or lost from the server's history window.  A
successfully received event resets the retry budget, so a long tail
session tolerates ``N`` *consecutive* failures, not ``N`` total.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request
from typing import Callable, Iterator, Optional, TextIO
from urllib.parse import urlsplit, urlunsplit

from repro.obs.live.bus import TERMINAL_EVENT_TYPES

#: First-retry backoff; doubles per consecutive failure.
INITIAL_BACKOFF_S = 0.5
#: Backoff ceiling for reconnect attempts.
MAX_BACKOFF_S = 5.0


def normalize_url(
    url: str,
    max_events: "Optional[int]" = None,
    since: "Optional[int]" = None,
) -> str:
    """Default scheme/path: ``HOST:PORT`` becomes ``http://HOST:PORT/events``.

    ``since`` appends the reconnect cursor (``since=SEQ``), replacing
    any cursor already present — each retry advances it.
    """
    if "//" not in url:
        url = "http://" + url
    parts = urlsplit(url)
    if parts.scheme not in ("http", "https"):
        raise ValueError(
            f"unsupported scheme {parts.scheme!r}; use http:// or https://"
        )
    path = parts.path
    if path in ("", "/"):
        path = "/events"
    query = parts.query
    if max_events is not None and "max=" not in query:
        extra = f"max={int(max_events)}"
        query = f"{query}&{extra}" if query else extra
    if since is not None:
        pieces = [p for p in query.split("&") if p and not p.startswith("since=")]
        pieces.append(f"since={int(since)}")
        query = "&".join(pieces)
    return urlunsplit((parts.scheme, parts.netloc, path, query, ""))


def _read_stream(
    target: str, timeout: float
) -> "Iterator[dict]":
    """Yield parsed events from one connection until it ends or breaks."""
    with urllib.request.urlopen(target, timeout=timeout) as response:  # noqa: S310 - scheme restricted by normalize_url
        for raw in response:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            yield event


def iter_events(
    url: str,
    timeout: float = 10.0,
    max_events: "Optional[int]" = None,
    reconnect: int = 0,
    sleep: "Callable[[float], None]" = time.sleep,
    on_reconnect: "Optional[Callable[[int, float], None]]" = None,
) -> "Iterator[dict]":
    """Yield parsed event dicts from a /events JSON-lines stream.

    With ``reconnect > 0`` a broken read re-opens the stream (up to
    that many consecutive attempts, doubling backoff capped at
    :data:`MAX_BACKOFF_S`) with ``since=<last seq>``, so the server
    replays only what this client has not seen; stale duplicates from
    servers without ``since`` support are dropped client-side too.
    ``sleep`` is injectable for tests; ``on_reconnect(attempt, delay)``
    observes each retry.
    """
    seen = 0
    last_seq = 0
    failures = 0
    last_type: "Optional[str]" = None
    while True:
        target = normalize_url(
            url,
            max_events=max_events,
            since=last_seq if last_seq > 0 else None,
        )
        try:
            for event in _read_stream(target, timeout):
                seq = event.get("seq")
                if isinstance(seq, int):
                    if seq <= last_seq:
                        continue  # duplicate from a since-less replay
                    last_seq = seq
                failures = 0
                last_type = event.get("type")
                yield event
                seen += 1
                if max_events is not None and seen >= max_events:
                    return
            # Clean end of stream: the server finished (follow=0 or
            # shutdown).  Without a reconnect budget that is the normal
            # exit.  With one, a terminal event (run_finished, a
            # service's drained) means the plane said everything it
            # ever will — reconnect-looping against a draining server
            # would just burn the budget and exit non-zero — so that is
            # a normal exit too.  Anything else is treated like a drop:
            # a follow stream should only end when the plane goes away,
            # and the budget bounds how long we probe for its return.
            if reconnect <= 0 or last_type in TERMINAL_EVENT_TYPES:
                return
            raise OSError("event stream ended")
        except OSError:
            if last_type in TERMINAL_EVENT_TYPES:
                # The plane already said everything it ever will; a
                # read timeout or drop after the terminal event is the
                # server idling through its shutdown grace window (a
                # follow stream stays open but silent), not data loss.
                return
            failures += 1
            if reconnect <= 0 or failures > reconnect:
                raise
            delay = min(
                INITIAL_BACKOFF_S * (2 ** (failures - 1)), MAX_BACKOFF_S
            )
            if on_reconnect is not None:
                on_reconnect(failures, delay)
            sleep(delay)


def render_event(event: dict) -> str:
    """One human line per event, led by seq and type."""
    seq = event.get("seq", "?")
    type_ = event.get("type", "event")
    run = event.get("run")
    head = f"#{seq:>5} {type_:<12}" if isinstance(seq, int) else f"#{seq} {type_}"
    bits = []
    if run:
        bits.append(f"run={run}")
    if type_ == "tick":
        bits.append(f"events={event.get('events_total', 0):.3g}")
        bits.append(f"t_sim={event.get('t_sim', 0.0):.1f}s")
    elif type_ in ("job", "shard"):
        total = event.get("total_jobs")
        done = event.get("jobs_done", 0)
        bits.append(f"jobs={done}/{total}" if total else f"jobs={done}")
        if type_ == "shard":
            bits.append(f"+{event.get('num_jobs', 0)}")
        if event.get("jct") is not None:
            bits.append(f"jct={event['jct']:.1f}s")
    elif type_ == "jcts":
        bits.append(f"count={event.get('count', 0)}")
    elif type_ == "schedule":
        bits.append(f"scheduler={event.get('scheduler', '?')}")
        if event.get("stages_delayed") is not None:
            bits.append(f"delayed={event['stages_delayed']}")
        if event.get("predicted_makespan") is not None:
            bits.append(f"predicted={event['predicted_makespan']:.1f}s")
    elif type_ == "fault":
        bits.append(f"kind={event.get('kind', '?')}")
        for key in ("node", "slot", "stage", "job"):
            if key in event:
                bits.append(f"{key}={event[key]}")
    elif type_ == "blame":
        bits.append(f"label={event.get('label', '?')}")
        bits.append(f"makespan={event.get('makespan', 0.0):.1f}s")
        categories = event.get("categories") or {}
        if categories:
            top = max(categories, key=lambda c: (categories[c], c))
            bits.append(f"top={top}:{categories[top]:.1f}s")
    elif type_ in ("submitted", "rejected", "cancelled", "failed"):
        if event.get("service_id"):
            bits.append(f"id={event['service_id']}")
        if type_ == "rejected":
            bits.append(f"reason={event.get('reason', '?')}")
        if type_ == "cancelled" and event.get("was"):
            bits.append(f"was={event['was']}")
        if "queue_depth" in event:
            bits.append(f"queued={event['queue_depth']}")
        if "running" in event:
            bits.append(f"running={event['running']}")
    elif type_ in ("draining", "drained"):
        for key in ("queue_depth", "running", "completed", "failed",
                    "cancelled", "rejected"):
            if key in event:
                bits.append(f"{key}={event[key]}")
    elif type_ == "run_started":
        if event.get("total_jobs") is not None:
            bits.append(f"total_jobs={event['total_jobs']}")
        if event.get("manifest"):
            bits.append(f"manifest={event['manifest'][:12]}")
    elif type_ == "run_finished":
        bits.append(f"jobs={event.get('jobs_done', 0)}")
        bits.append(f"events={event.get('events_total', 0):.3g}")
        bits.append(f"t_sim={event.get('t_sim', 0.0):.1f}s")
    else:
        bits.extend(
            f"{k}={v}" for k, v in sorted(event.items())
            if k not in ("seq", "elapsed_s", "type", "run")
        )
    elapsed = event.get("elapsed_s")
    if isinstance(elapsed, (int, float)):
        bits.append(f"@{elapsed:.2f}s")
    return head + " " + " ".join(bits) if bits else head


def tail(
    url: str,
    stream: "Optional[TextIO]" = None,
    max_events: "Optional[int]" = None,
    raw: bool = False,
    timeout: float = 10.0,
    reconnect: int = 0,
    sleep: "Callable[[float], None]" = time.sleep,
) -> int:
    """Stream events from ``url`` to ``stream``; returns the event count."""
    out = stream if stream is not None else sys.stdout

    def note_reconnect(attempt: int, delay: float) -> None:
        print(
            f"tail: stream dropped; reconnect {attempt} in {delay:.1f}s",
            file=sys.stderr,
        )

    count = 0
    try:
        for event in iter_events(url, timeout=timeout, max_events=max_events,
                                 reconnect=reconnect, sleep=sleep,
                                 on_reconnect=note_reconnect):
            if raw:
                out.write(json.dumps(event, sort_keys=True) + "\n")
            else:
                out.write(render_event(event) + "\n")
            out.flush()
            count += 1
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return count
