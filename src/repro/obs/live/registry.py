"""Thread-safe in-process metrics registry for the live telemetry plane.

Four primitive families, each addressable by a sorted label set:

* :class:`Counter` — monotone non-decreasing totals (``inc``), plus an
  ``inc_to`` ratchet for sources that already report cumulative values
  (the engine's ``events_processed``);
* :class:`Gauge`  — last-write-wins scalars (the simulation clock);
* :class:`Histogram` — fixed-bucket distributions with OpenMetrics
  ``_bucket``/``_sum``/``_count`` exposition (per-job JCTs);
* :class:`TimeSeries` — bounded ring buffers of ``(t, value)`` samples
  for the ``/runs/<id>`` JSON snapshots (recent throughput window);
  deliberately *not* part of the OpenMetrics exposition.

All mutation goes through one registry lock, so engine ticks on the
simulation thread and scrapes on HTTP handler threads never observe a
torn update.  Updates are O(1) dictionary operations; publishers hit
the registry at most once per 20k engine events (the existing progress
cadence), so the hot path stays unmeasurable.

The module also carries the OpenMetrics *consumer* side — a text
parser and validator (:func:`parse_openmetrics_text`,
:func:`validate_openmetrics_text`) used by the test suite, the CI
observability job, and the drift check that pins the final ``/metrics``
scrape to ``repro report --prometheus`` output.

Stdlib-only on purpose: this module is imported by the progress
reporter, which the innermost simulator paths touch.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Iterable, Mapping, Sequence

#: Label sets are canonicalized to sorted key/value tuples.
LabelKey = tuple[tuple[str, str], ...]

#: Default JCT histogram bucket upper bounds, in seconds.  Spans the
#: trace twin's short interactive jobs through multi-hour stragglers;
#: +Inf is implicit.
DEFAULT_JCT_BUCKETS: "tuple[float, ...]" = (
    30.0, 60.0, 120.0, 300.0, 600.0, 1200.0, 3600.0, 14400.0,
)


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(key: LabelKey, extra: "Sequence[tuple[str, str]]" = ()) -> str:
    items = list(key) + list(extra)
    if not items:
        return ""
    return "{" + ",".join(f'{k}="{_escape(v)}"' for k, v in items) + "}"


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    if name.endswith(("_total", "_bucket", "_sum", "_count")):
        raise ValueError(
            f"family name {name!r} must not carry a reserved sample suffix"
        )
    return name


class _Family:
    """Base: a named metric family sharing the registry lock."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.RLock) -> None:
        self.name = _check_name(name)
        self.help = str(help_text)
        self._lock = lock

    def header_lines(self) -> "list[str]":
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Family):
    """Monotone non-decreasing total; exposed as ``<name>_total``."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, lock: threading.RLock) -> None:
        super().__init__(name, help_text, lock)
        self._values: "dict[LabelKey, float]" = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        amount = float(amount)
        if amount < 0.0 or math.isnan(amount):
            raise ValueError(f"counter increment must be >= 0, got {amount!r}")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def inc_to(self, value: float, **labels: Any) -> None:
        """Ratchet to ``value`` if larger (cumulative upstream sources)."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("counter value must not be NaN")
        key = _label_key(labels)
        with self._lock:
            if value > self._values.get(key, 0.0):
                self._values[key] = value

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def sample_lines(self) -> "list[str]":
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}_total{_render_labels(key)} {value!r}"
            for key, value in items
        ]

    def snapshot(self) -> dict:
        with self._lock:
            return {_render_labels(k) or "{}": v
                    for k, v in sorted(self._values.items())}


class Gauge(_Family):
    """Last-write-wins scalar."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, lock: threading.RLock) -> None:
        super().__init__(name, help_text, lock)
        self._values: "dict[LabelKey, float]" = {}

    def set(self, value: float, **labels: Any) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("gauge value must not be NaN")
        with self._lock:
            self._values[_label_key(labels)] = value

    def add(self, amount: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(amount)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def sample_lines(self) -> "list[str]":
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{_render_labels(key)} {value!r}"
            for key, value in items
        ]

    def snapshot(self) -> dict:
        with self._lock:
            return {_render_labels(k) or "{}": v
                    for k, v in sorted(self._values.items())}


class Histogram(_Family):
    """Fixed-bucket histogram (cumulative buckets, OpenMetrics style)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.RLock,
        buckets: "Sequence[float]" = DEFAULT_JCT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        for lo, hi in zip(bounds, bounds[1:]):
            if not lo < hi:
                raise ValueError(
                    f"bucket bounds must be strictly increasing, got {bounds}"
                )
        if any(math.isnan(b) or math.isinf(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.bounds = bounds
        #: label key -> (per-bucket counts incl. +Inf, sum)
        self._state: "dict[LabelKey, tuple[list[int], float]]" = {}

    def observe(self, value: float, **labels: Any) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("histogram observation must not be NaN")
        key = _label_key(labels)
        with self._lock:
            counts, total = self._state.get(
                key, ([0] * (len(self.bounds) + 1), 0.0)
            )
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[i] += 1
            counts[-1] += 1  # +Inf bucket counts everything
            self._state[key] = (counts, total + value)

    def count(self, **labels: Any) -> int:
        with self._lock:
            state = self._state.get(_label_key(labels))
            return state[0][-1] if state else 0

    def sum(self, **labels: Any) -> float:
        with self._lock:
            state = self._state.get(_label_key(labels))
            return state[1] if state else 0.0

    def sample_lines(self) -> "list[str]":
        with self._lock:
            items = sorted(
                (k, (list(c), s)) for k, (c, s) in self._state.items()
            )
        lines: "list[str]" = []
        for key, (counts, total) in items:
            for bound, count in zip(self.bounds, counts):
                le = _render_labels(key, extra=(("le", repr(bound)),))
                lines.append(f"{self.name}_bucket{le} {count}")
            inf = _render_labels(key, extra=(("le", "+Inf"),))
            lines.append(f"{self.name}_bucket{inf} {counts[-1]}")
            lines.append(f"{self.name}_count{_render_labels(key)} {counts[-1]}")
            lines.append(f"{self.name}_sum{_render_labels(key)} {total!r}")
        return lines

    def snapshot(self) -> dict:
        with self._lock:
            return {
                _render_labels(k) or "{}": {
                    "buckets": dict(zip([repr(b) for b in self.bounds]
                                        + ["+Inf"], counts)),
                    "count": counts[-1],
                    "sum": total,
                }
                for k, (counts, total) in sorted(self._state.items())
            }


class TimeSeries(_Family):
    """Bounded ring buffer of ``(t, value)`` samples per label set.

    Serves the ``/runs/<id>`` snapshots (recent throughput window);
    not part of the OpenMetrics text — scrapers get totals, snapshots
    get the time dimension.
    """

    kind = "timeseries"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.RLock,
        maxlen: int = 512,
    ) -> None:
        super().__init__(name, help_text, lock)
        if maxlen <= 0:
            raise ValueError(f"maxlen must be positive, got {maxlen}")
        self.maxlen = int(maxlen)
        self._series: "dict[LabelKey, deque]" = {}

    def append(self, t: float, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = deque(maxlen=self.maxlen)
            series.append((float(t), float(value)))

    def points(self, **labels: Any) -> "list[tuple[float, float]]":
        with self._lock:
            series = self._series.get(_label_key(labels))
            return list(series) if series else []

    def last(self, **labels: Any) -> "tuple[float, float] | None":
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series[-1] if series else None

    def sample_lines(self) -> "list[str]":  # pragma: no cover - excluded
        return []

    def snapshot(self) -> dict:
        with self._lock:
            return {
                _render_labels(k) or "{}": [[t, v] for t, v in series]
                for k, series in sorted(self._series.items())
            }


class MetricsRegistry:
    """The process-wide family table behind ``/metrics``.

    Registration is idempotent: asking for an existing name returns
    the existing family (the kind must match).  Rendering walks the
    families in name order, so the exposition is deterministic.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: "dict[str, _Family]" = {}

    def _register(self, cls, name: str, help_text: str, **kwargs) -> Any:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            family = cls(name, help_text, self._lock, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str) -> Counter:
        return self._register(Counter, name, help_text)

    def gauge(self, name: str, help_text: str) -> Gauge:
        return self._register(Gauge, name, help_text)

    def histogram(
        self, name: str, help_text: str,
        buckets: "Sequence[float]" = DEFAULT_JCT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help_text, buckets=buckets)

    def series(self, name: str, help_text: str, maxlen: int = 512) -> TimeSeries:
        return self._register(TimeSeries, name, help_text, maxlen=maxlen)

    def families(self) -> "list[_Family]":
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def render_openmetrics(self, eof: bool = True) -> str:
        """OpenMetrics text exposition of every non-series family."""
        lines: "list[str]" = []
        for family in self.families():
            if isinstance(family, TimeSeries):
                continue
            samples = family.sample_lines()
            if not samples:
                continue
            lines.extend(family.header_lines())
            lines.extend(samples)
        text = "\n".join(lines)
        if text:
            text += "\n"
        if eof:
            text += "# EOF\n"
        return text

    def snapshot(self) -> dict:
        """JSON-ready dump of every family (series included)."""
        return {
            family.name: {"kind": family.kind, "help": family.help,
                          "values": family.snapshot()}
            for family in self.families()
        }


# --------------------------------------------------------------------- #
# OpenMetrics consumer side: parser + validator


def _parse_label_block(block: str, line_no: int,
                       errors: "list[str]") -> "LabelKey | None":
    """Parse ``k="v",k2="v2"`` (without braces) into a label key."""
    labels: "list[tuple[str, str]]" = []
    i, n = 0, len(block)
    while i < n:
        eq = block.find('="', i)
        if eq < 0:
            errors.append(f"line {line_no}: malformed label block {block!r}")
            return None
        name = block[i:eq]
        j = eq + 2
        value = []
        while j < n:
            c = block[j]
            if c == "\\" and j + 1 < n:
                value.append({"n": "\n", '"': '"', "\\": "\\"}.get(
                    block[j + 1], block[j + 1]))
                j += 2
                continue
            if c == '"':
                break
            value.append(c)
            j += 1
        else:
            errors.append(f"line {line_no}: unterminated label value")
            return None
        labels.append((name, "".join(value)))
        j += 1
        if j < n:
            if block[j] != ",":
                errors.append(f"line {line_no}: expected ',' in labels")
                return None
            j += 1
        i = j
    return tuple(labels)


def parse_openmetrics_text(
    text: str,
) -> "tuple[dict[tuple[str, LabelKey], float], dict[str, str], list[str]]":
    """Parse an OpenMetrics exposition.

    Returns ``(samples, types, errors)``: sample values keyed by
    ``(sample_name, labels)``, the declared family types, and any
    structural errors found along the way.
    """
    samples: "dict[tuple[str, LabelKey], float]" = {}
    types: "dict[str, str]" = {}
    errors: "list[str]" = []
    lines = text.splitlines()
    saw_eof = False
    for line_no, line in enumerate(lines, start=1):
        if saw_eof and line:
            errors.append(f"line {line_no}: content after # EOF")
            break
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if parts[:2] == ["#", "EOF"]:
                saw_eof = True
            elif len(parts) >= 3 and parts[1] == "TYPE":
                name = parts[2]
                if name in types:
                    errors.append(f"line {line_no}: duplicate TYPE for {name}")
                types[name] = parts[3] if len(parts) > 3 else ""
            elif len(parts) >= 3 and parts[1] in ("HELP", "UNIT"):
                pass
            else:
                errors.append(f"line {line_no}: unrecognized comment {line!r}")
            continue
        head, _, value_text = line.rpartition(" ")
        if not head:
            errors.append(f"line {line_no}: not a sample line: {line!r}")
            continue
        if "{" in head:
            name, _, rest = head.partition("{")
            if not rest.endswith("}"):
                errors.append(f"line {line_no}: unterminated label block")
                continue
            labels = _parse_label_block(rest[:-1], line_no, errors)
            if labels is None:
                continue
        else:
            name, labels = head, ()
        try:
            value = float(value_text)
        except ValueError:
            errors.append(
                f"line {line_no}: sample value {value_text!r} is not a float"
            )
            continue
        if math.isnan(value):
            errors.append(f"line {line_no}: sample value is NaN")
        key = (name, tuple(labels))
        if key in samples:
            errors.append(f"line {line_no}: duplicate sample {head!r}")
        samples[key] = value
    if not saw_eof:
        errors.append("exposition does not end with # EOF")
    return samples, types, errors


def _family_of(sample_name: str, types: Mapping[str, str]) -> "str | None":
    if sample_name in types:
        return sample_name
    for suffix in ("_total", "_bucket", "_count", "_sum"):
        if sample_name.endswith(suffix):
            stem = sample_name[: -len(suffix)]
            if stem in types:
                return stem
    return None


def validate_openmetrics_text(text: str) -> "list[str]":
    """Structural validation; an empty list means the text is valid.

    Checks: ``# EOF`` termination, parseable sample lines and label
    blocks, every sample attached to a declared ``# TYPE`` family,
    counter samples using the ``_total`` suffix, and histogram series
    carrying consistent ``+Inf``/``_count`` totals with monotone
    cumulative buckets.
    """
    samples, types, errors = parse_openmetrics_text(text)

    hist_buckets: "dict[tuple[str, LabelKey], list[tuple[float, float]]]" = {}
    for (name, labels), value in samples.items():
        family = _family_of(name, types)
        if family is None:
            errors.append(f"sample {name!r} has no # TYPE declaration")
            continue
        kind = types[family]
        if kind == "counter":
            if not name.endswith("_total"):
                errors.append(
                    f"counter sample {name!r} must use the _total suffix"
                )
            elif value < 0:
                errors.append(f"counter {name!r} is negative: {value!r}")
        elif kind == "histogram" and name.endswith("_bucket"):
            le = dict(labels).get("le")
            if le is None:
                errors.append(f"histogram bucket {name!r} lacks an le label")
                continue
            bound = math.inf if le == "+Inf" else float(le)
            rest = tuple(kv for kv in labels if kv[0] != "le")
            hist_buckets.setdefault((family, rest), []).append((bound, value))

    for (family, labels), buckets in sorted(hist_buckets.items()):
        buckets.sort(key=lambda bv: bv[0])
        label_text = _render_labels(labels)
        if not buckets or not math.isinf(buckets[-1][0]):
            errors.append(f"histogram {family}{label_text} lacks an "
                          "le=\"+Inf\" bucket")
            continue
        counts = [v for _, v in buckets]
        if any(hi < lo for lo, hi in zip(counts, counts[1:])):
            errors.append(
                f"histogram {family}{label_text} buckets are not cumulative"
            )
        total = samples.get((f"{family}_count", labels))
        if total is not None and abs(total - counts[-1]) > 1e-9:
            errors.append(
                f"histogram {family}{label_text} _count {total!r} != "
                f"+Inf bucket {counts[-1]!r}"
            )
    return errors
