"""Stdlib-only threaded HTTP server for the live telemetry plane.

Endpoints:

* ``GET /metrics`` — OpenMetrics text (live registry + final report
  families once attached), ``application/openmetrics-text``.
* ``GET /healthz`` — liveness JSON (run counts, last event seq).
* ``GET /runs`` — JSON list of run ids.
* ``GET /runs/<id>`` — JSON snapshot of one run (status, jobs, events,
  faults, throughput window, final result payload when finished).
* ``GET /events`` — JSON-lines event stream.  Query params:
  ``replay=N`` (emit up to N most recent history events first,
  default all), ``follow=0|1`` (keep streaming live events, default
  1), ``max=N`` (close after N events total), ``since=SEQ`` (skip
  events with ``seq <= SEQ`` — what ``repro tail`` sends when it
  reconnects after a dropped stream, so no event is re-printed).

When a ``control`` object (the ``repro serve`` daemon) is attached,
the service control surface is layered on the same server:

* ``GET /service`` — occupancy + counters snapshot.
* ``GET /service/jobs`` / ``GET /service/jobs/<id>`` — lifecycle
  records for retained jobs.
* ``POST /service/submit`` — wire-format DAG in the JSON body;
  ``202`` on admit, or a typed rejection (``429`` queue_full,
  ``503`` draining, ``409`` duplicate, ``413`` too_large).
* ``POST /service/cancel/<id>`` — cancel a queued or running job.
* ``POST /service/drain`` — stop admitting; in-flight work finishes.

The server owns no telemetry state: it reads a
:class:`~repro.obs.live.hub.LiveHub` and the hub's bus.  Handler
threads are daemonic and never touch the simulation, so serving is
observation-only — results stay bit-identical with the server on.

Threading here is sanctioned: handlers are I/O-bound readers over
lock-protected registry/bus state.  The flow analyzer records the
serve-thread spawn as a ``via="thread"`` submit site and verifies its
target mutates no module state; the one wall-clock read (the
``/healthz`` timestamp scrapers use for staleness checks) is sanctioned
with a reason in the committed baseline (tools/flow_baseline.json).
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.obs.live.hub import LiveHub

#: Content type mandated by the OpenMetrics spec for text exposition.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

#: How often streaming handlers wake up to check for shutdown.
_STREAM_POLL_S = 0.25

#: HTTP status per typed rejection reason (see service admission).
REJECTION_STATUS = {
    "queue_full": 429,
    "draining": 503,
    "duplicate": 409,
    "too_large": 413,
}

#: Cap on accepted POST bodies; a DAG submission is a few KB.
_MAX_BODY_BYTES = 4 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Routes requests against the owning :class:`LiveServer`."""

    # Set by LiveServer when constructing the server class.
    server_version = "repro-live/1"
    protocol_version = "HTTP/1.1"

    @property
    def live(self) -> "LiveServer":
        return self.server.live_server  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr noise (stderr belongs to --progress)."""

    # -- plumbing ------------------------------------------------------ #

    def _send_body(
        self, status: int, body: bytes, content_type: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload, status: int = 200) -> None:
        body = (json.dumps(payload, sort_keys=True, default=str)
                + "\n").encode("utf-8")
        self._send_body(status, body, "application/json; charset=utf-8")

    # -- routes -------------------------------------------------------- #

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        params = parse_qs(parts.query)
        try:
            if path == "/metrics":
                self.live.hub.count_scrape("metrics")
                body = self.live.hub.render_metrics().encode("utf-8")
                self._send_body(200, body, OPENMETRICS_CONTENT_TYPE)
            elif path == "/healthz":
                self.live.hub.count_scrape("healthz")
                payload = self.live.hub.healthz()
                # Wall-clock stamp so scrapers can detect a stale plane;
                # observation-only (baseline-sanctioned F001).
                payload["time"] = time.time()  # noqa: L001 - stale-plane detection, baseline-sanctioned F001
                self._send_json(payload)
            elif path == "/runs":
                self.live.hub.count_scrape("runs")
                self._send_json({"runs": self.live.hub.run_ids()})
            elif path.startswith("/runs/"):
                self.live.hub.count_scrape("runs")
                run_id = path[len("/runs/"):]
                snapshot = self.live.hub.run_snapshot(run_id)
                if snapshot is None:
                    self._send_json(
                        {"error": f"unknown run {run_id!r}",
                         "runs": self.live.hub.run_ids()},
                        status=404,
                    )
                else:
                    self._send_json(snapshot)
            elif path == "/events":
                self.live.hub.count_scrape("events")
                self._stream_events(params)
            elif path == "/service" or path.startswith("/service/"):
                self._service_get(path)
            else:
                self._send_json({"error": f"no route for {path!r}"}, status=404)
        except (BrokenPipeError, ConnectionResetError):
            # Client went away mid-response; nothing to clean up beyond
            # the handler thread itself.
            self.close_connection = True

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        # Lazy import: repro.service sits above obs in the package
        # graph (service.core simulates; simulator imports obs).
        from repro.service.state import RejectedSubmission

        path = urlsplit(self.path).path.rstrip("/") or "/"
        try:
            control = self.live.control
            if control is None:
                self._send_json(
                    {"error": "no service attached (start with repro serve)"},
                    status=404,
                )
                return
            if path == "/service/submit":
                self.live.hub.count_scrape("service")
                payload = self._read_json_body()
                if payload is None:
                    return
                try:
                    record = control.submit_wire(payload)
                except ValueError as exc:
                    self._send_json({"error": str(exc)}, status=400)
                    return
                except RejectedSubmission as exc:
                    rejection = exc.rejection
                    self._send_json(
                        {"rejected": rejection.to_dict()},
                        status=REJECTION_STATUS.get(rejection.reason, 429),
                    )
                    return
                self._send_json({"job": record}, status=202)
            elif path.startswith("/service/cancel/"):
                self.live.hub.count_scrape("service")
                service_id = path[len("/service/cancel/"):]
                record = control.cancel(service_id)
                if record is None:
                    self._send_json(
                        {"error": f"unknown job {service_id!r}"}, status=404
                    )
                else:
                    self._send_json({"job": record})
            elif path == "/service/drain":
                self.live.hub.count_scrape("service")
                self._send_json({"service": control.drain()})
            else:
                self._send_json({"error": f"no route for {path!r}"}, status=404)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _service_get(self, path: str) -> None:
        control = self.live.control
        if control is None:
            self._send_json(
                {"error": "no service attached (start with repro serve)"},
                status=404,
            )
            return
        self.live.hub.count_scrape("service")
        if path == "/service":
            self._send_json({"service": control.stats()})
        elif path == "/service/jobs":
            self._send_json({"jobs": control.jobs_list()})
        elif path.startswith("/service/jobs/"):
            service_id = path[len("/service/jobs/"):]
            record = control.job(service_id)
            if record is None:
                self._send_json(
                    {"error": f"unknown job {service_id!r}"}, status=404
                )
            else:
                self._send_json({"job": record})
        else:
            self._send_json({"error": f"no route for {path!r}"}, status=404)

    def _read_json_body(self) -> "Optional[dict]":
        """Parse the request's JSON body; sends the error response itself."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length <= 0:
            self._send_json({"error": "a JSON request body is required"},
                            status=400)
            return None
        if length > _MAX_BODY_BYTES:
            self._send_json(
                {"error": f"request body exceeds {_MAX_BODY_BYTES} bytes"},
                status=413,
            )
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json({"error": f"malformed JSON body: {exc}"},
                            status=400)
            return None
        if not isinstance(payload, dict):
            self._send_json({"error": "JSON body must be an object"},
                            status=400)
            return None
        return payload

    def _stream_events(self, params: "dict[str, list[str]]") -> None:
        def _int_param(name: str, default: "Optional[int]") -> "Optional[int]":
            values = params.get(name)
            if not values:
                return default
            try:
                return int(values[0])
            except ValueError:
                return default

        replay = _int_param("replay", None)
        max_events = _int_param("max", None)
        follow = _int_param("follow", 1) != 0
        since = _int_param("since", 0) or 0

        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson; charset=utf-8")
        self.send_header("Cache-Control", "no-store")
        # Stream until done; length is unknown up front.
        self.send_header("Connection", "close")
        self.end_headers()

        bus = self.live.hub.bus
        stopping = self.live.stopping
        sent = 0

        def _write(event: dict) -> bool:
            nonlocal sent
            line = json.dumps(event, sort_keys=True) + "\n"
            self.wfile.write(line.encode("utf-8"))
            self.wfile.flush()
            sent += 1
            return max_events is None or sent < max_events

        if follow:
            q: "queue.Queue[dict]" = queue.Queue()
            enqueue = q.put  # hold the bound method so unsubscribe matches
            backlog = bus.tap(enqueue, since=since)
            try:
                if replay is not None:
                    backlog = backlog[-replay:] if replay > 0 else []
                for event in backlog:
                    if not _write(event):
                        return
                while not stopping.is_set():
                    try:
                        event = q.get(timeout=_STREAM_POLL_S)
                    except queue.Empty:
                        continue
                    if not _write(event):
                        return
            finally:
                bus.unsubscribe(enqueue)
                self.close_connection = True
        else:
            backlog = bus.events_since(since=since, limit=replay)
            for event in backlog:
                if not _write(event):
                    break
            self.close_connection = True


class LiveServer:
    """Owns the ThreadingHTTPServer and its serve thread.

    ``port=0`` binds an ephemeral port; read :attr:`port` / :attr:`url`
    after construction.  :meth:`start` spawns the daemonized serve
    thread, :meth:`wait` parks for a grace period (used by ``--serve``
    so scrapers can collect the final state), and :meth:`close` shuts
    down idempotently, unblocking any streaming handlers via the
    :attr:`stopping` event.
    """

    def __init__(
        self,
        hub: LiveHub,
        host: str = "127.0.0.1",
        port: int = 0,
        control=None,
    ) -> None:
        self.hub = hub
        #: Optional service-control facade (the ``repro serve`` daemon);
        #: when absent, ``/service*`` routes answer 404.
        self.control = control
        self.stopping = threading.Event()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.live_server = self  # type: ignore[attr-defined]
        self._thread: "Optional[threading.Thread]" = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "LiveServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-live-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def wait(self, seconds: float) -> None:
        """Park the caller for up to ``seconds`` (early-out on close)."""
        if seconds > 0:
            self.stopping.wait(seconds)

    def close(self) -> None:
        if self.stopping.is_set():
            return
        self.stopping.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "LiveServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
