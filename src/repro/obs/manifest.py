"""Run manifests: make every artifact traceable to its inputs.

A :class:`RunManifest` pins down everything that determines a run's
numbers — RNG seed, configuration (hashed canonically), package and
Python versions, and a structural fingerprint per workload DAG — and
is embedded in every trace export, JSON report, and event-log header
the toolkit writes.  Given any figure, the manifest answers "which
seed, which config, which workload, which code version produced this".

Manifests are deliberately *deterministic*: they contain no wall-clock
timestamp, so the same inputs always yield byte-identical manifests
(and therefore byte-identical exports), which is what makes them
diffable across runs and machines.
"""

from __future__ import annotations

import hashlib
import json
import platform as _platform
import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dag.job import Job

MANIFEST_SCHEMA_VERSION = 1


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, tight separators, stable floats."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str)


def config_hash(config: Mapping[str, Any]) -> str:
    """sha256 over the canonical JSON of a configuration mapping."""
    digest = hashlib.sha256(canonical_json(dict(config)).encode("utf-8"))
    return digest.hexdigest()


def workload_fingerprint(job: "Job") -> str:
    """Structural hash of a job: stages (with volumes/rates) and edges.

    Two jobs fingerprint equal iff the simulator and Algorithm 1 would
    treat them identically.
    """
    stages = sorted(
        (
            s.stage_id,
            float(s.input_bytes),
            float(s.output_bytes),
            float(s.process_rate),
            int(s.num_tasks),
            float(s.task_cv),
        )
        for s in job
    )
    payload = canonical_json(
        {"job_id": job.job_id, "stages": stages, "edges": sorted(job.edges)}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RunManifest:
    """Provenance record attached to exports and reports."""

    version: str
    python: str
    platform: str
    numpy: str
    seed: "int | None"
    config: dict
    config_hash: str
    workloads: dict[str, str]
    schema_version: int = MANIFEST_SCHEMA_VERSION
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "version": self.version,
            "python": self.python,
            "platform": self.platform,
            "numpy": self.numpy,
            "seed": self.seed,
            "config": dict(self.config),
            "config_hash": self.config_hash,
            "workloads": dict(self.workloads),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "RunManifest":
        return cls(
            version=str(record.get("version", "")),
            python=str(record.get("python", "")),
            platform=str(record.get("platform", "")),
            numpy=str(record.get("numpy", "")),
            seed=record.get("seed"),
            config=dict(record.get("config") or {}),
            config_hash=str(record.get("config_hash", "")),
            workloads=dict(record.get("workloads") or {}),
            schema_version=int(record.get("schema_version", MANIFEST_SCHEMA_VERSION)),
            extra=dict(record.get("extra") or {}),
        )

    def summary(self) -> str:
        """One-line human rendering for report footers."""
        parts = [f"repro {self.version}", f"python {self.python}"]
        if self.seed is not None:
            parts.append(f"seed {self.seed}")
        parts.append(f"config {self.config_hash[:12]}")
        if self.workloads:
            parts.append("workloads " + ",".join(sorted(self.workloads)))
        return " | ".join(parts)


def build_manifest(
    *,
    seed: "int | None" = None,
    config: "Mapping[str, Any] | None" = None,
    jobs: "Iterable[Job] | None" = None,
    extra: "Mapping[str, Any] | None" = None,
) -> RunManifest:
    """Assemble a manifest for the current interpreter and inputs.

    ``config`` is any JSON-able mapping of the knobs that shaped the
    run (CLI args, scheduler params); its canonical hash is what makes
    two runs comparable at a glance.  ``jobs`` contributes one
    structural fingerprint per workload DAG.
    """
    from repro import __version__  # deferred: avoid import cycle at load time

    cfg = dict(config or {})
    return RunManifest(
        version=__version__,
        python=".".join(str(v) for v in sys.version_info[:3]),
        platform=_platform.platform(),
        numpy=np.__version__,
        seed=seed,
        config=cfg,
        config_hash=config_hash(cfg),
        workloads={job.job_id: workload_fingerprint(job) for job in (jobs or ())},
        extra=dict(extra or {}),
    )
