"""DelayStage — stage delay scheduling for DAG-style data analytics jobs.

A full reproduction of *"Stage Delay Scheduling: Speeding up DAG-style
Data Analytics Jobs with Resource Interleaving"* (ICPP 2019): the
DelayStage algorithm, a fluid-flow cluster simulator standing in for
the Spark/EC2 testbed, the AggShuffle and Fuxi baselines, the paper's
benchmark workloads, and an Alibaba-trace statistical twin.

Quickstart
----------
>>> from repro import (
...     ec2_m4large_cluster, cosine_similarity,
...     StockSparkScheduler, DelayStageScheduler, compare_schedulers,
... )
>>> cluster = ec2_m4large_cluster()
>>> job = cosine_similarity()
>>> runs = compare_schedulers(job, cluster, [
...     StockSparkScheduler(), DelayStageScheduler(profiled=False)])
>>> runs["delaystage"].jct < runs["spark"].jct
True

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for the reproduced tables and figures.
"""

from repro.dag import (
    Job,
    JobBuilder,
    Stage,
    critical_path,
    execution_paths,
    parallel_stage_set,
    sequential_stage_set,
    topological_order,
)
from repro.cluster import (
    ClusterSpec,
    NodeSpec,
    alibaba_sim_cluster,
    ec2_m4large_cluster,
    uniform_cluster,
)
from repro.simulator import (
    FixedDelayPolicy,
    ImmediatePolicy,
    Simulation,
    SimulationConfig,
    SimulationResult,
    simulate_job,
)
from repro.core import (
    DelaySchedule,
    DelayStageParams,
    DelayTimeCalculator,
    PathOrder,
    StageDelayer,
    delay_stage_schedule,
)
from repro.schedulers import (
    AggShuffleScheduler,
    DelayStageScheduler,
    FuxiScheduler,
    StockSparkScheduler,
    compare_schedulers,
    run_with_scheduler,
)
from repro.workloads import (
    WORKLOADS,
    als,
    connected_components,
    cosine_similarity,
    lda,
    triangle_count,
    workload_by_name,
)
from repro.profiling import measure_cluster, profile_job
from repro.obs import (
    RunManifest,
    Tracer,
    build_manifest,
    write_chrome_trace,
    write_spans_jsonl,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # dag
    "Stage",
    "Job",
    "JobBuilder",
    "topological_order",
    "parallel_stage_set",
    "sequential_stage_set",
    "execution_paths",
    "critical_path",
    # cluster
    "NodeSpec",
    "ClusterSpec",
    "ec2_m4large_cluster",
    "alibaba_sim_cluster",
    "uniform_cluster",
    # simulator
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "simulate_job",
    "ImmediatePolicy",
    "FixedDelayPolicy",
    # core
    "DelaySchedule",
    "DelayStageParams",
    "DelayTimeCalculator",
    "PathOrder",
    "StageDelayer",
    "delay_stage_schedule",
    # schedulers
    "StockSparkScheduler",
    "AggShuffleScheduler",
    "DelayStageScheduler",
    "FuxiScheduler",
    "run_with_scheduler",
    "compare_schedulers",
    # workloads
    "als",
    "connected_components",
    "cosine_similarity",
    "lda",
    "triangle_count",
    "workload_by_name",
    "WORKLOADS",
    # profiling
    "profile_job",
    "measure_cluster",
    # observability
    "Tracer",
    "RunManifest",
    "build_manifest",
    "write_chrome_trace",
    "write_spans_jsonl",
]
