"""Job: a DAG of stages with dependency bookkeeping."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.dag.stage import Stage


class Job:
    """A DAG-style data-analytics job.

    A job owns a set of :class:`~repro.dag.stage.Stage` objects plus the
    parent→child edges between them.  The constructor validates that the
    edge set references known stages and is acyclic.

    Parameters
    ----------
    job_id:
        Unique job identifier.
    stages:
        The stages of the job, in any order.
    edges:
        ``(parent_id, child_id)`` pairs: the child shuffle-reads the
        parent's output, so it cannot start before the parent completes.
    """

    def __init__(
        self,
        job_id: str,
        stages: Iterable[Stage],
        edges: Iterable[tuple[str, str]] = (),
    ) -> None:
        if not job_id:
            raise ValueError("job_id must be a non-empty string")
        self.job_id = job_id
        self._stages: dict[str, Stage] = {}
        for stage in stages:
            if stage.stage_id in self._stages:
                raise ValueError(f"duplicate stage_id {stage.stage_id!r} in job {job_id!r}")
            self._stages[stage.stage_id] = stage
        if not self._stages:
            raise ValueError(f"job {job_id!r} must contain at least one stage")

        self._parents: dict[str, set[str]] = {sid: set() for sid in self._stages}
        self._children: dict[str, set[str]] = {sid: set() for sid in self._stages}
        for parent, child in edges:
            if parent not in self._stages:
                raise ValueError(f"edge references unknown parent stage {parent!r}")
            if child not in self._stages:
                raise ValueError(f"edge references unknown child stage {child!r}")
            if parent == child:
                raise ValueError(f"self-loop on stage {parent!r}")
            self._parents[child].add(parent)
            self._children[parent].add(child)

        self._assert_acyclic()

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #

    @property
    def stages(self) -> Mapping[str, Stage]:
        """Read-only mapping from stage id to stage."""
        return dict(self._stages)

    @property
    def stage_ids(self) -> list[str]:
        """Stage ids in insertion order."""
        return list(self._stages)

    @property
    def num_stages(self) -> int:
        return len(self._stages)

    @property
    def edges(self) -> list[tuple[str, str]]:
        """All (parent, child) edges, parent-sorted for determinism."""
        out = []
        for parent in self._stages:
            for child in sorted(self._children[parent]):
                out.append((parent, child))
        return out

    def stage(self, stage_id: str) -> Stage:
        """Look up a stage by id, raising ``KeyError`` with context."""
        try:
            return self._stages[stage_id]
        except KeyError:
            raise KeyError(f"job {self.job_id!r} has no stage {stage_id!r}") from None

    def parents(self, stage_id: str) -> frozenset[str]:
        """Direct parents of ``stage_id``."""
        self.stage(stage_id)
        return frozenset(self._parents[stage_id])

    def children(self, stage_id: str) -> frozenset[str]:
        """Direct children of ``stage_id``."""
        self.stage(stage_id)
        return frozenset(self._children[stage_id])

    @property
    def roots(self) -> list[str]:
        """Stages with no parents (they read input from cluster storage)."""
        return [sid for sid in self._stages if not self._parents[sid]]

    @property
    def leaves(self) -> list[str]:
        """Stages with no children (the job is done when they finish)."""
        return [sid for sid in self._stages if not self._children[sid]]

    @property
    def total_input_bytes(self) -> float:
        """Sum of shuffle-input volumes over all stages."""
        return sum(s.input_bytes for s in self._stages.values())

    def __iter__(self) -> Iterator[Stage]:
        return iter(self._stages.values())

    def __contains__(self, stage_id: object) -> bool:
        return stage_id in self._stages

    def __len__(self) -> int:
        return len(self._stages)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Job({self.job_id!r}, stages={len(self._stages)}, edges={len(self.edges)})"

    # ------------------------------------------------------------------ #
    # transforms
    # ------------------------------------------------------------------ #

    def scaled(self, factor: float, job_id: str | None = None) -> "Job":
        """Return a copy of the job with every stage's data volumes scaled.

        This is how the profiling substrate constructs the 10 %-sampled
        copy of a job (Sec. 4.2 of the paper).
        """
        return Job(
            job_id or f"{self.job_id}-x{factor:g}",
            [s.scaled(factor) for s in self._stages.values()],
            self.edges,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _assert_acyclic(self) -> None:
        """Kahn's algorithm; raises ``ValueError`` on a cycle."""
        indeg = {sid: len(self._parents[sid]) for sid in self._stages}
        queue = [sid for sid, d in indeg.items() if d == 0]
        seen = 0
        while queue:
            sid = queue.pop()
            seen += 1
            for child in self._children[sid]:
                indeg[child] -= 1
                if indeg[child] == 0:
                    queue.append(child)
        if seen != len(self._stages):
            cyclic = sorted(sid for sid, d in indeg.items() if d > 0)
            raise ValueError(f"job {self.job_id!r} contains a cycle among stages {cyclic}")
