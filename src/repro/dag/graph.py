"""Graph algorithms over a job's DAG.

The paper (Sec. 2.1) defines *parallel stages* as "the kind of stages
which can be executed in parallel with at least one of the other stages
in the job's DAG" — i.e. two stages are parallel iff neither is an
ancestor of the other.  Everything else here (topological order,
ancestor sets, critical path) supports that definition and the
execution-path decomposition.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Mapping

from repro.dag.job import Job


def topological_order(job: Job) -> list[str]:
    """Stage ids in a deterministic topological order.

    Ties are broken by stage-id insertion order so that repeated runs
    (and the trace-analysis CDFs built on top) are reproducible.
    """
    order_index = {sid: i for i, sid in enumerate(job.stage_ids)}
    indeg = {sid: len(job.parents(sid)) for sid in job.stage_ids}
    ready = sorted((sid for sid, d in indeg.items() if d == 0), key=order_index.__getitem__)
    out: list[str] = []
    while ready:
        sid = ready.pop(0)
        out.append(sid)
        changed = False
        for child in job.children(sid):
            indeg[child] -= 1
            if indeg[child] == 0:
                ready.append(child)
                changed = True
        if changed:
            ready.sort(key=order_index.__getitem__)
    if len(out) != job.num_stages:  # pragma: no cover - Job guarantees acyclicity
        raise ValueError("cycle detected")
    return out


def ancestors(job: Job, stage_id: str) -> frozenset[str]:
    """All transitive ancestors (proper) of ``stage_id``."""
    seen: set[str] = set()
    frontier = deque(job.parents(stage_id))
    while frontier:
        sid = frontier.popleft()
        if sid in seen:
            continue
        seen.add(sid)
        frontier.extend(job.parents(sid))
    return frozenset(seen)


def descendants(job: Job, stage_id: str) -> frozenset[str]:
    """All transitive descendants (proper) of ``stage_id``."""
    seen: set[str] = set()
    frontier = deque(job.children(stage_id))
    while frontier:
        sid = frontier.popleft()
        if sid in seen:
            continue
        seen.add(sid)
        frontier.extend(job.children(sid))
    return frozenset(seen)


def _ancestor_table(job: Job) -> dict[str, frozenset[str]]:
    """Ancestor sets for every stage in one topological sweep."""
    table: dict[str, set[str]] = {}
    for sid in topological_order(job):
        acc: set[str] = set()
        for parent in job.parents(sid):
            acc.add(parent)
            acc |= table[parent]
        table[sid] = acc
    return {sid: frozenset(s) for sid, s in table.items()}


def is_parallel_pair(job: Job, a: str, b: str) -> bool:
    """True iff stages ``a`` and ``b`` can execute simultaneously.

    Two distinct stages are parallel iff neither is a transitive
    ancestor of the other.
    """
    if a == b:
        return False
    return b not in ancestors(job, a) and a not in ancestors(job, b)


def parallel_pairs(job: Job) -> set[frozenset[str]]:
    """All unordered pairs of mutually parallel stages."""
    table = _ancestor_table(job)
    ids = job.stage_ids
    pairs: set[frozenset[str]] = set()
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            if a not in table[b] and b not in table[a]:
                pairs.add(frozenset((a, b)))
    return pairs


def parallel_stage_set(job: Job) -> frozenset[str]:
    """The paper's parallel-stage set ``K``.

    A stage belongs to ``K`` iff it is parallel with at least one other
    stage of the job.  (In the paper's Fig. 7, Stage 5 is excluded
    because it is sequential with every other stage.)
    """
    table = _ancestor_table(job)
    ids = job.stage_ids
    n = len(ids)
    members: set[str] = set()
    for i, a in enumerate(ids):
        if a in members:
            continue
        for j in range(n):
            b = ids[j]
            if a == b:
                continue
            if a not in table[b] and b not in table[a]:
                members.add(a)
                members.add(b)
                break
    return frozenset(members)


def sequential_stage_set(job: Job) -> frozenset[str]:
    """Stages *not* in the parallel-stage set ``K``.

    The paper notes (Sec. 5.2) that the execution time of these stages
    bounds DelayStage's achievable improvement — e.g.
    ConnectedComponents spends ~54.8 % of its JCT in sequential stages
    and therefore sees the smallest gain.
    """
    return frozenset(job.stage_ids) - parallel_stage_set(job)


def critical_path(
    job: Job,
    weight: "Callable[[str], float] | Mapping[str, float] | None" = None,
) -> tuple[list[str], float]:
    """Longest weighted root→leaf chain of the DAG.

    Parameters
    ----------
    weight:
        Per-stage weight: a callable, a mapping, or ``None`` to use each
        stage's standalone single-executor compute work.

    Returns
    -------
    ``(stage_ids_along_path, total_weight)``.
    """
    if weight is None:
        wfn = lambda sid: job.stage(sid).compute_work  # noqa: E731
    elif callable(weight):
        wfn = weight
    else:
        mapping = dict(weight)
        wfn = mapping.__getitem__

    best: dict[str, float] = {}
    pred: dict[str, str | None] = {}
    for sid in topological_order(job):
        parent_best = None
        for parent in job.parents(sid):
            if parent_best is None or best[parent] > best[parent_best]:
                parent_best = parent
        base = best[parent_best] if parent_best is not None else 0.0
        best[sid] = base + wfn(sid)
        pred[sid] = parent_best

    end = max(best, key=lambda sid: best[sid])
    path: list[str] = []
    cur: str | None = end
    while cur is not None:
        path.append(cur)
        cur = pred[cur]
    path.reverse()
    return path, best[end]
