"""Fluent construction helpers for job DAGs."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.dag.job import Job
from repro.dag.stage import Stage
from repro.util.units import MB


class JobBuilder:
    """Incrementally assemble a :class:`~repro.dag.job.Job`.

    Example
    -------
    >>> job = (
    ...     JobBuilder("demo")
    ...     .stage("S1", input_mb=512, output_mb=256, process_rate_mb=20)
    ...     .stage("S2", input_mb=512, output_mb=256, process_rate_mb=20)
    ...     .stage("S3", input_mb=512, output_mb=128, process_rate_mb=20,
    ...            parents=["S1", "S2"])
    ...     .build()
    ... )
    >>> sorted(job.parents("S3"))
    ['S1', 'S2']
    """

    def __init__(self, job_id: str) -> None:
        self._job_id = job_id
        self._stages: list[Stage] = []
        self._edges: list[tuple[str, str]] = []

    def stage(
        self,
        stage_id: str,
        *,
        input_mb: float,
        output_mb: float,
        process_rate_mb: float,
        num_tasks: int = 64,
        task_cv: float = 0.0,
        parents: Iterable[str] = (),
        name: str = "",
    ) -> "JobBuilder":
        """Add a stage with MB-denominated volumes and rate.

        ``parents`` may reference stages added earlier; forward
        references are rejected at :meth:`build` time by Job validation.
        """
        self._stages.append(
            Stage(
                stage_id=stage_id,
                input_bytes=input_mb * MB,
                output_bytes=output_mb * MB,
                process_rate=process_rate_mb * MB,
                num_tasks=num_tasks,
                task_cv=task_cv,
                name=name,
            )
        )
        for parent in parents:
            self._edges.append((parent, stage_id))
        return self

    def edge(self, parent: str, child: str) -> "JobBuilder":
        """Add a dependency edge between existing stages."""
        self._edges.append((parent, child))
        return self

    def build(self) -> Job:
        """Validate and return the job."""
        return Job(self._job_id, self._stages, self._edges)


def job_from_edges(
    job_id: str,
    edges: Sequence[tuple[str, str]],
    stage_params: "Mapping[str, Mapping[str, float]] | None" = None,
    *,
    default_input_mb: float = 512.0,
    default_output_mb: float = 256.0,
    default_process_rate_mb: float = 20.0,
) -> Job:
    """Build a job from an edge list, filling in default stage parameters.

    Convenient for graph-shaped tests and for converting trace DAGs whose
    per-stage volumes are synthesized separately.

    Parameters
    ----------
    edges:
        ``(parent, child)`` pairs; the stage set is their union.
    stage_params:
        Optional per-stage overrides with keys ``input_mb``,
        ``output_mb``, ``process_rate_mb``, ``num_tasks``, ``task_cv``.
    """
    ids: list[str] = []
    seen: set[str] = set()
    for a, b in edges:
        for sid in (a, b):
            if sid not in seen:
                seen.add(sid)
                ids.append(sid)
    if not ids:
        raise ValueError("edge list is empty; use JobBuilder for single-stage jobs")

    params = stage_params or {}
    stages = []
    for sid in ids:
        p = dict(params.get(sid, {}))
        stages.append(
            Stage(
                stage_id=sid,
                input_bytes=float(p.get("input_mb", default_input_mb)) * MB,
                output_bytes=float(p.get("output_mb", default_output_mb)) * MB,
                process_rate=float(p.get("process_rate_mb", default_process_rate_mb)) * MB,
                num_tasks=int(p.get("num_tasks", 64)),
                task_cv=float(p.get("task_cv", 0.0)),
            )
        )
    return Job(job_id, stages, edges)
