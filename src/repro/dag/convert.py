"""Interop with :mod:`networkx`.

Jobs convert losslessly to/from ``networkx.DiGraph`` so users can
apply the networkx toolbox (drawing, centrality, transitive
reduction, …) to job DAGs, or import DAGs produced elsewhere.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.dag.job import Job
from repro.dag.stage import Stage

if TYPE_CHECKING:  # pragma: no cover
    import networkx as nx


def to_networkx(job: Job) -> "nx.DiGraph":
    """Convert a job to a ``networkx.DiGraph``.

    Node attributes carry the full stage parameters plus the job id as
    a graph attribute, so :func:`from_networkx` round-trips exactly.
    """
    import networkx as nx

    graph = nx.DiGraph(job_id=job.job_id)
    for stage in job:
        graph.add_node(
            stage.stage_id,
            input_bytes=stage.input_bytes,
            output_bytes=stage.output_bytes,
            process_rate=stage.process_rate,
            num_tasks=stage.num_tasks,
            task_cv=stage.task_cv,
            name=stage.name,
        )
    graph.add_edges_from(job.edges)
    return graph


def from_networkx(graph: "nx.DiGraph", job_id: "str | None" = None) -> Job:
    """Build a job from a ``networkx.DiGraph``.

    Node attributes missing from a node fall back to defaults
    (512 MB in, 256 MB out, 10 MB/s per executor), so hand-drawn
    structural graphs import without ceremony; cycles are rejected by
    Job validation.
    """
    from repro.util.units import MB

    jid = job_id or graph.graph.get("job_id") or "imported"
    stages = []
    for node, attrs in graph.nodes(data=True):
        stages.append(
            Stage(
                stage_id=str(node),
                input_bytes=float(attrs.get("input_bytes", 512 * MB)),
                output_bytes=float(attrs.get("output_bytes", 256 * MB)),
                process_rate=float(attrs.get("process_rate", 10 * MB)),
                num_tasks=int(attrs.get("num_tasks", 64)),
                task_cv=float(attrs.get("task_cv", 0.0)),
                name=str(attrs.get("name", "")) or str(node),
            )
        )
    edges = [(str(a), str(b)) for a, b in graph.edges()]
    return Job(jid, stages, edges)
