"""DAG model for DAG-style data analytics jobs.

A :class:`~repro.dag.job.Job` is a directed acyclic graph of
:class:`~repro.dag.stage.Stage` objects.  Stages carry the per-stage
parameters the paper's model (Sec. 3) consumes: shuffle-input volume
``s``, shuffle-output volume ``d``, per-executor data-processing rate
``R_k``, task count and task-duration heterogeneity.

Graph algorithms (topological order, ancestor sets, the parallel-stage
set ``K``, critical path) live in :mod:`repro.dag.graph`; the
execution-path decomposition illustrated in the paper's Fig. 7 lives in
:mod:`repro.dag.paths`.
"""

from repro.dag.stage import Stage
from repro.dag.job import Job
from repro.dag.builder import JobBuilder, job_from_edges
from repro.dag.graph import (
    ancestors,
    critical_path,
    descendants,
    is_parallel_pair,
    parallel_pairs,
    parallel_stage_set,
    sequential_stage_set,
    topological_order,
)
from repro.dag.convert import from_networkx, to_networkx
from repro.dag.paths import ExecutionPath, execution_paths

__all__ = [
    "Stage",
    "Job",
    "JobBuilder",
    "job_from_edges",
    "topological_order",
    "ancestors",
    "descendants",
    "is_parallel_pair",
    "parallel_pairs",
    "parallel_stage_set",
    "sequential_stage_set",
    "critical_path",
    "ExecutionPath",
    "execution_paths",
    "to_networkx",
    "from_networkx",
]
