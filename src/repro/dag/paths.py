"""Execution-path decomposition of the parallel-stage set (paper Fig. 7).

DelayStage organizes the parallel-stage set ``K`` into *execution
paths*: chains of stages in ``K`` that must execute sequentially.
Paths may share stages — in the paper's Fig. 7, Stage 3 appears in both
``P1 = {Stage 1, Stage 3}`` and ``P2 = {Stage 2, Stage 3}`` — and
Algorithm 1 simply skips a stage that was already scheduled in an
earlier path.

The decomposition enumerates the maximal source→sink chains of the
sub-DAG induced by ``K``.  Jobs from the Alibaba trace can have up to
186 stages, where full enumeration could blow up combinatorially, so
beyond ``max_paths`` candidate paths we fall back to a greedy
longest-path cover that still guarantees every stage of ``K`` appears
in at least one path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

from repro.dag.graph import parallel_stage_set, topological_order
from repro.dag.job import Job


@dataclass(frozen=True)
class ExecutionPath:
    """One execution path ``P_m``: a dependency chain of parallel stages.

    Attributes
    ----------
    stages:
        Stage ids in dependency order (parent before child).
    execution_time:
        ``T_m``: the sum of the standalone execution times of the path's
        stages (Alg. 1 line 3), used only for ordering paths.
    """

    stages: tuple[str, ...]
    execution_time: float

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self) -> Iterator[str]:
        return iter(self.stages)

    def __contains__(self, stage_id: object) -> bool:
        return stage_id in self.stages


def _induced_edges(job: Job, members: frozenset[str]) -> dict[str, list[str]]:
    """Children adjacency of the sub-DAG induced by ``members``.

    An edge survives only if both endpoints are in ``members`` — a
    parent→child dependency passing through a non-member stage breaks
    the chain (the non-member is a sequential stage that serializes the
    job anyway).
    """
    return {
        sid: sorted(c for c in job.children(sid) if c in members)
        for sid in members
    }


def _enumerate_chains(
    roots: Sequence[str], children: Mapping[str, Sequence[str]], limit: int
) -> "list[tuple[str, ...]] | None":
    """All maximal chains from the given roots; ``None`` if > ``limit``."""
    chains: list[tuple[str, ...]] = []
    stack: list[tuple[str, ...]] = [(r,) for r in roots]
    while stack:
        chain = stack.pop()
        kids = children[chain[-1]]
        if not kids:
            chains.append(chain)
            if len(chains) > limit:
                return None
        else:
            for kid in kids:
                stack.append(chain + (kid,))
    return chains


def _greedy_cover(
    members: frozenset[str],
    children: Mapping[str, Sequence[str]],
    parents_in: Mapping[str, list[str]],
    order: Sequence[str],
    time_of: Callable[[str], float],
) -> list[tuple[str, ...]]:
    """Longest-path cover: repeatedly extract the heaviest chain that
    still contains at least one uncovered stage, until all covered."""
    uncovered = set(members)
    paths: list[tuple[str, ...]] = []
    while uncovered:
        # Longest-path DP over the induced sub-DAG, counting only weight.
        best: dict[str, float] = {}
        pred: dict[str, str | None] = {}
        for sid in order:
            pbest = None
            for p in parents_in[sid]:
                if pbest is None or best[p] > best[pbest]:
                    pbest = p
            best[sid] = (best[pbest] if pbest is not None else 0.0) + time_of(sid)
            pred[sid] = pbest
        # Pick the heaviest endpoint whose chain covers something new.
        chosen: tuple[str, ...] | None = None
        for end in sorted(best, key=lambda s: -best[s]):
            chain: list[str] = []
            cur: str | None = end
            while cur is not None:
                chain.append(cur)
                cur = pred[cur]
            chain.reverse()
            if uncovered.intersection(chain):
                chosen = tuple(chain)
                break
        assert chosen is not None  # uncovered nonempty => some chain covers
        paths.append(chosen)
        uncovered.difference_update(chosen)
    return paths


def execution_paths(
    job: Job,
    stage_times: "Mapping[str, float] | None" = None,
    max_paths: int = 256,
) -> list[ExecutionPath]:
    """Decompose the parallel-stage set of ``job`` into execution paths.

    Parameters
    ----------
    job:
        The job whose DAG to decompose.
    stage_times:
        Standalone execution time ``t̂_k`` per stage (Alg. 1 line 2).
        Defaults to each stage's single-executor compute work, which
        preserves relative path ordering for untimed DAGs.
    max_paths:
        Enumeration budget before falling back to the greedy cover.

    Returns
    -------
    Paths sorted in **descending** order of ``T_m`` (Alg. 1 line 4) with
    path stage-tuples as a deterministic tiebreak.  Callers wanting the
    random/ascending variants re-sort via :mod:`repro.core.ordering`.
    """
    members = parallel_stage_set(job)
    if not members:
        return []

    time_of: Callable[[str], float]
    if stage_times is None:
        time_of = lambda sid: job.stage(sid).compute_work  # noqa: E731
    else:
        table = dict(stage_times)
        missing = members - table.keys()
        if missing:
            raise ValueError(f"stage_times missing entries for stages {sorted(missing)}")
        time_of = table.__getitem__

    children = _induced_edges(job, members)
    parents_in = {sid: [] for sid in members}
    for sid, kids in children.items():
        for kid in kids:
            parents_in[kid].append(sid)
    order = [sid for sid in topological_order(job) if sid in members]
    roots = [sid for sid in order if not parents_in[sid]]

    chains = _enumerate_chains(roots, children, max_paths)
    if chains is None:
        chains = _greedy_cover(members, children, parents_in, order, time_of)

    paths = [
        ExecutionPath(stages=chain, execution_time=sum(time_of(s) for s in chain))
        for chain in chains
    ]
    paths.sort(key=lambda p: (-p.execution_time, p.stages))
    return paths
