"""Stage: the unit the paper schedules.

A stage reads its (shuffle) input over the network, processes it on
worker CPUs, and shuffle-writes its output to local disks — the three
phases of Eq. (1) and Fig. 8 in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class Stage:
    """Immutable description of one stage of a DAG-style job.

    Parameters
    ----------
    stage_id:
        Unique identifier within the job (e.g. ``"S1"``).
    input_bytes:
        Total shuffle-input volume ``s_k`` the stage reads over the
        network, summed across all workers and source nodes.  For a
        source stage (no parents) this is the volume read from cluster
        storage (HDFS in the paper's setup).
    output_bytes:
        Total shuffle-write volume ``d_k`` the stage writes to local
        disks across all workers.
    process_rate:
        Data-processing rate ``R_k`` in bytes/second *per executor*.
        The task-processing term of Eq. (1) is
        ``sum_i s_k^{i,w} / (eps_k^w * R_k)``.
    num_tasks:
        Number of tasks (stage partitions).  Together with the executor
        count this determines the number of waves, which bounds how much
        of the stage's output can be pipelined to children under
        AggShuffle-style shuffle pipelining.
    task_cv:
        Coefficient of variation of task durations within the stage.
        ``0`` means perfectly homogeneous tasks (the paper's LDA case,
        where AggShuffle gains nothing); larger values let more output
        trickle out early.
    name:
        Optional human-readable label (defaults to ``stage_id``).
    """

    stage_id: str
    input_bytes: float
    output_bytes: float
    process_rate: float
    num_tasks: int = 64
    task_cv: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if not self.stage_id:
            raise ValueError("stage_id must be a non-empty string")
        check_non_negative(self.input_bytes, "input_bytes")
        check_non_negative(self.output_bytes, "output_bytes")
        check_positive(self.process_rate, "process_rate")
        if self.num_tasks < 1:
            raise ValueError(f"num_tasks must be >= 1, got {self.num_tasks}")
        check_non_negative(self.task_cv, "task_cv")
        if not self.name:
            object.__setattr__(self, "name", self.stage_id)

    @property
    def shuffle_ratio(self) -> float:
        """Ratio of shuffle-input size to shuffle-output size.

        The paper observes (Sec. 5.2) that AggShuffle hurts stages whose
        shuffle-input/intermediate-data ratio exceeds 1 (e.g. LDA Stage 1
        at 1.3) because the proactive transfer adds CPU work.
        """
        if self.output_bytes == 0:
            return float("inf") if self.input_bytes > 0 else 0.0
        return self.input_bytes / self.output_bytes

    @property
    def compute_work(self) -> float:
        """Executor-seconds of processing if run on a single executor."""
        return self.input_bytes / self.process_rate

    def scaled(self, factor: float) -> "Stage":
        """Return a copy with data volumes scaled by ``factor``.

        Used by the profiling substrate, which runs the job on a sampled
        (e.g. 10 %) copy of the input data, and by dataset-size sweeps.
        """
        check_positive(factor, "factor")
        return replace(
            self,
            input_bytes=self.input_bytes * factor,
            output_bytes=self.output_bytes * factor,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Stage({self.stage_id}: in={self.input_bytes / 2**20:.0f}MB, "
            f"out={self.output_bytes / 2**20:.0f}MB, R={self.process_rate / 2**20:.1f}MB/s)"
        )
